package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBackendLookup(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
	}{{"", "f64"}, {"f64", "f64"}, {"f32", "f32"}} {
		be, err := Lookup(tc.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", tc.name, err)
		}
		if be.Name() != tc.want {
			t.Errorf("Lookup(%q).Name() = %q, want %q", tc.name, be.Name(), tc.want)
		}
	}
	if _, err := Lookup("f16"); err == nil {
		t.Error("Lookup(f16) should fail")
	} else if !strings.Contains(err.Error(), "f64") || !strings.Contains(err.Error(), "f32") {
		t.Errorf("Lookup error should name the valid backends: %v", err)
	}
	if Default().Name() != "f64" {
		t.Errorf("Default() = %q, want f64", Default().Name())
	}
}

// TestBackendF64BitIdentity pins the golden-path contract: every F64
// backend method must reproduce the exact legacy kernel sequence it
// replaced, bit for bit.
func TestBackendF64BitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var ws Workspace
	for trial := 0; trial < 100; trial++ {
		r := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		c := 1 + rng.Intn(13)
		x := randMat(rng, r, k)
		wMat := randMat(rng, k, c)
		bMat := randMat(rng, 1, c)
		w, b := NewWeights(wMat), NewWeights(bMat)

		ws.Reset()
		got := New(r, c)
		F64.MatMul(&ws, got, x, w)
		want := New(r, c)
		MatMulInto(want, x, wMat)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: F64.MatMul diverges from MatMulInto", trial)
		}

		F64.MatMulAddBias(&ws, got, x, w, b)
		MatMulAddBiasInto(want, x, wMat, bMat)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: F64.MatMulAddBias diverges from MatMulAddBiasInto", trial)
		}

		F64.BatchMatMul(&ws, got, x, w)
		MatMulInto(want, x, wMat)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: F64.BatchMatMul diverges from MatMulInto", trial)
		}

		F64.BatchMatMulAddBias(&ws, got, x, w, b)
		MatMulAddBiasInto(want, x, wMat, bMat)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: F64.BatchMatMulAddBias diverges from MatMulAddBiasInto", trial)
		}

		F64.MatMulParallel(&ws, got, x, w, 3)
		MatMulInto(want, x, wMat)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: F64.MatMulParallel diverges from MatMulInto", trial)
		}

		// LSTM pre-activation: serial and batch forms against the legacy
		// MatMulInto + AddInPlace + bias sequence.
		h := randMat(rng, r, k)
		whMat := randMat(rng, k, c)
		wh := NewWeights(whMat)
		wantZ := New(r, c)
		MatMulInto(wantZ, x, wMat)
		zh := New(r, c)
		MatMulInto(zh, h, whMat)
		AddInPlace(wantZ, zh)
		for i := 0; i < r; i++ {
			row := wantZ.Row(i)
			for j, bv := range bMat.Data {
				row[j] += bv
			}
		}
		ws.Reset()
		gotZ := New(r, c)
		F64.LSTMPreact(&ws, gotZ, x, w, h, wh, b)
		if !bitsEqual(gotZ, wantZ) {
			t.Fatalf("trial %d: F64.LSTMPreact diverges from legacy step sequence", trial)
		}
		F64.BatchLSTMPreact(&ws, gotZ, x, w, h, wh, b)
		if !bitsEqual(gotZ, wantZ) {
			t.Fatalf("trial %d: F64.BatchLSTMPreact diverges from legacy step sequence", trial)
		}

		F64.Tanh(got, wantZ)
		TanhInto(want, wantZ)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: F64.Tanh diverges from TanhInto", trial)
		}
	}
}

// TestBackendF32Tolerance checks the f32 backend tracks the f64 results to
// float32-level relative error on well-conditioned inputs, and that its
// serial/batch/parallel variants agree with each other bit-for-bit.
func TestBackendF32Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var ws Workspace
	const rtol = 1e-4 // ~1000 ulp of float32 headroom for k-term sums with cancellation
	relErr := func(got, want *Matrix) float64 {
		worst := 0.0
		for i := range got.Data {
			d := math.Abs(got.Data[i] - want.Data[i])
			if s := math.Abs(want.Data[i]); s > 1e-6 {
				d /= s
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(8)
		k := 1 + rng.Intn(32)
		c := 1 + rng.Intn(13)
		x := New(r, k)
		x.RandUniform(rng, 1)
		wMat := New(k, c)
		wMat.RandUniform(rng, 1)
		bMat := New(1, c)
		bMat.RandUniform(rng, 1)
		w, b := NewWeights(wMat), NewWeights(bMat)

		ws.Reset()
		f64out := New(r, c)
		F64.MatMulAddBias(&ws, f64out, x, w, b)
		f32out := New(r, c)
		F32.MatMulAddBias(&ws, f32out, x, w, b)
		if e := relErr(f32out, f64out); e > rtol {
			t.Fatalf("trial %d: f32 MatMulAddBias rel err %g > %g", trial, e, rtol)
		}

		batch := New(r, c)
		F32.BatchMatMulAddBias(&ws, batch, x, w, b)
		if !bitsEqual(batch, f32out) {
			t.Fatalf("trial %d: f32 serial and batch MatMulAddBias disagree", trial)
		}
	}
}

// TestBackendF32ParallelIdentity checks the f32 parallel product is
// bit-identical to the f32 serial product for every worker count.
func TestBackendF32ParallelIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var ws Workspace
	x := New(13, 17)
	x.RandUniform(rng, 1)
	wMat := New(17, 11)
	wMat.RandUniform(rng, 1)
	w := NewWeights(wMat)
	ws.Reset()
	serial := New(13, 11)
	F32.MatMul(&ws, serial, x, w)
	for workers := 1; workers <= 6; workers++ {
		got := New(13, 11)
		F32.MatMulParallel(&ws, got, x, w, workers)
		if !bitsEqual(got, serial) {
			t.Fatalf("f32 parallel product diverges from serial at %d workers", workers)
		}
	}
}

// TestWeightsMirrors pins the Weights cache contract: views are correct,
// cached (pointer-stable, no recompute between Touches), stale without
// Touch, and refreshed by it.
func TestWeightsMirrors(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := randMat(rng, 5, 7)
	w := NewWeights(m)
	if w.Mat() != m {
		t.Fatal("Mat() should alias the wrapped matrix")
	}

	tr := w.T()
	if !bitsEqual(tr, Transpose(m)) {
		t.Fatal("T() wrong on first access")
	}
	if w.T() != tr {
		t.Fatal("T() should be pointer-stable between Touches")
	}
	m32 := w.M32()
	for i, v := range m.Data {
		if m32.Data[i] != float32(v) {
			t.Fatalf("M32()[%d] = %v, want %v", i, m32.Data[i], float32(v))
		}
	}
	t32 := w.T32()
	want32 := New32(7, 5)
	Stage32(want32, Transpose(m))
	if !bitsEqual32(t32, want32) {
		t.Fatal("T32() disagrees with Stage32(Transpose(m))")
	}

	// Mutate without Touch: views must be stale (that is the contract the
	// nn mutation sites honor with explicit Touches).
	old := m.At(0, 0)
	m.Set(0, 0, old+42)
	if w.T().At(0, 0) != old {
		t.Fatal("T() recomputed without a Touch — cache is not generation-gated")
	}
	w.Touch()
	if w.T().At(0, 0) != old+42 {
		t.Fatal("T() stale after Touch")
	}
	if w.M32().At(0, 0) != float32(old+42) {
		t.Fatal("M32() stale after Touch")
	}
	if w.T32().At(0, 0) != float32(old+42) {
		t.Fatal("T32() stale after Touch")
	}

	// Steady state: view access after warm-up allocates nothing.
	allocs := testing.AllocsPerRun(100, func() {
		_ = w.T()
		_ = w.M32()
		_ = w.T32()
	})
	if allocs != 0 {
		t.Errorf("steady-state view access allocates %v times", allocs)
	}
}
