// Package nn is a small, dependency-free neural network library with
// hand-written backpropagation. It provides exactly the building blocks the
// HEAD paper's models need: fully connected layers, ReLU/LeakyReLU/Tanh
// activations, an LSTM with backpropagation through time, the graph
// attention layer of Equations (10)–(11), mean squared error, SGD and Adam
// optimizers, gradient clipping, and soft target-network updates.
//
// Layers cache their most recent forward inputs, so a layer instance must
// not be shared between concurrent forward/backward passes.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"head/internal/tensor"
)

// Param is a trainable parameter: a value matrix and its accumulated
// gradient. Optimizers consume and reset the gradient.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
	h    *tensor.Weights // lazy generation-counted view cache over W
}

// NewParam allocates a named rows×cols parameter with a zero gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad resets the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// H returns the parameter's tensor.Weights handle: the generation-counted
// cache of derived views (f64 transpose, f32 mirrors) the backend kernels
// compute against. Created on first use, so params built by struct literal
// work too.
func (p *Param) H() *tensor.Weights {
	if p.h == nil {
		p.h = tensor.NewWeights(p.W)
	}
	return p.h
}

// Touch invalidates the cached views after a mutation of W.Data. Every
// weight-mutation site in this package (optimizer steps, CopyParams,
// SoftUpdate, Load, init) calls it; code that writes W.Data directly must
// do the same before the next backend forward.
func (p *Param) Touch() {
	if p.h != nil {
		p.h.Touch()
	}
}

// Module is anything that exposes trainable parameters.
type Module interface {
	Params() []*Param
}

// ZeroGrads resets the gradients of every parameter of m.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// CountParams returns the total number of scalar parameters of m.
func CountParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W.Data)
	}
	return n
}

// ClipGradNorm scales all gradients of m so that their global L2 norm does
// not exceed maxNorm, and returns the pre-clip norm. A non-positive maxNorm
// disables clipping.
func ClipGradNorm(m Module, maxNorm float64) float64 {
	total := 0.0
	params := m.Params()
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}

// Gradients returns a deep copy of m's accumulated gradients, one slice
// per parameter in Params order. Data-parallel trainers use it to ship a
// worker replica's gradient contribution back to the coordinator.
func Gradients(m Module) [][]float64 {
	params := m.Params()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Grad.Data...)
	}
	return out
}

// AddGradients accumulates a snapshot taken by Gradients (on an
// identically shaped module) into m's gradients. Reducing worker snapshots
// in a fixed order keeps the floating-point sum independent of scheduling.
func AddGradients(m Module, grads [][]float64) {
	params := m.Params()
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: AddGradients parameter count mismatch %d vs %d", len(params), len(grads)))
	}
	for i, p := range params {
		if len(p.Grad.Data) != len(grads[i]) {
			panic(fmt.Sprintf("nn: AddGradients shape mismatch at %d (%s)", i, p.Name))
		}
		for j, g := range grads[i] {
			p.Grad.Data[j] += g
		}
	}
}

// CopyParams copies every parameter value of src into dst. The two modules
// must have identical parameter shapes in identical order (e.g. two
// instances built by the same constructor), as used for target networks.
func CopyParams(dst, src Module) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic(fmt.Sprintf("nn: CopyParams parameter count mismatch %d vs %d", len(dp), len(sp)))
	}
	for i := range dp {
		if dp[i].W.Rows != sp[i].W.Rows || dp[i].W.Cols != sp[i].W.Cols {
			panic(fmt.Sprintf("nn: CopyParams shape mismatch at %d (%s)", i, sp[i].Name))
		}
		copy(dp[i].W.Data, sp[i].W.Data)
		dp[i].Touch()
	}
}

// SoftUpdate blends src into dst with ratio tau: dst ← τ·src + (1−τ)·dst.
// This is the target-network stabilization of DDPG/P-DQN training.
func SoftUpdate(dst, src Module, tau float64) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic(fmt.Sprintf("nn: SoftUpdate parameter count mismatch %d vs %d", len(dp), len(sp)))
	}
	for i := range dp {
		d, s := dp[i].W.Data, sp[i].W.Data
		for j := range d {
			d[j] = tau*s[j] + (1-tau)*d[j]
		}
		dp[i].Touch()
	}
}

// xavier initializes p for a layer with the given fan-in/out.
func xavier(p *Param, rng *rand.Rand, fanIn, fanOut int) {
	p.W.XavierInit(rng, fanIn, fanOut)
	p.Touch()
}
