// Package ngsim generates the synthetic stand-in for the paper's REAL
// dataset (NGSIM US-101 merged with I-80): trajectories of conventional
// vehicles on a 1.14 km six-lane highway segment. Since the real NGSIM
// recordings are not available offline, the generator runs the
// heterogeneous-IDM traffic simulator and adds measurement noise, then
// applies the paper's preprocessing — picking an ego vehicle as the
// reference "autonomous vehicle", applying the sensor limits, running
// phantom construction, and pairing each z-step spatial-temporal graph
// with the one-step ground-truth future states of the six targets.
package ngsim

import (
	"fmt"
	"math/rand"
	"sort"

	"head/internal/phantom"
	"head/internal/sensor"
	"head/internal/traffic"
	"head/internal/world"
)

// Sample is one supervised example for the state prediction task: the
// spatial-temporal graph at time t and the ground-truth relative future
// state [d_lat, d_lon, v_rel] of each target at t+1 (relative to the ego at
// t, as in Equation (13)). Masked targets are constructed phantoms whose
// loss the paper masks out.
type Sample struct {
	Graph *phantom.Graph
	Truth [phantom.NumSlots][3]float64
	Mask  [phantom.NumSlots]bool // true = phantom, exclude from loss/metrics

	// TruthK/MaskK optionally extend the supervision to horizons 2..K
	// (TruthK[h-2] is the truth at t+h, still relative to the ego at t)
	// when Config.Horizon > 1. Used by the multi-step accuracy-decay
	// analysis; the models themselves train on the one-step Truth.
	TruthK [][phantom.NumSlots][3]float64
	MaskK  [][phantom.NumSlots]bool
}

// Dataset is an ordered collection of samples.
type Dataset struct{ Samples []*Sample }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Split partitions the dataset into train and test sets with the given
// train ratio (the paper uses 4:1, i.e. ratio 0.8), preserving order.
func (d *Dataset) Split(trainRatio float64) (train, test *Dataset) {
	n := int(float64(len(d.Samples)) * trainRatio)
	if n < 0 {
		n = 0
	}
	if n > len(d.Samples) {
		n = len(d.Samples)
	}
	return &Dataset{Samples: d.Samples[:n]}, &Dataset{Samples: d.Samples[n:]}
}

// Shuffle permutes the samples using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Config controls dataset generation.
type Config struct {
	Traffic traffic.Config
	Sensor  sensor.Config
	// Rollouts is the number of independent traffic simulations.
	Rollouts int
	// StepsPerRollout is the number of simulated steps per rollout.
	StepsPerRollout int
	// EgosPerStep is how many ego perspectives are sampled per step.
	EgosPerStep int
	// WarmupSteps are simulated before sampling begins, letting the IDM
	// traffic relax from its synthetic initial conditions.
	WarmupSteps int
	// NoiseLon and NoiseV are the standard deviations of the Gaussian
	// measurement noise added to observed positions and velocities,
	// mimicking NGSIM's tracking noise.
	NoiseLon, NoiseV float64
	// Horizon is the number of future steps with recorded ground truth
	// (≥ 1). Horizons beyond 1 populate Sample.TruthK for multi-step
	// error analysis.
	Horizon int
}

// DefaultConfig returns the REAL-substitute settings: the paper's 1.14 km
// six-lane segment at congested, NGSIM-like density (US-101 and I-80 were
// recorded in peak-period stop-and-go traffic, which is also the regime
// where vehicle interactions carry predictive signal).
func DefaultConfig() Config {
	tc := traffic.DefaultConfig()
	tc.World.RoadLength = 1140
	tc.Density = 300
	return Config{
		Traffic:         tc,
		Sensor:          sensor.DefaultConfig(),
		Rollouts:        4,
		StepsPerRollout: 40,
		EgosPerStep:     4,
		WarmupSteps:     30,
		NoiseLon:        0.2,
		NoiseV:          0.1,
	}
}

// snapshot is the global state of every conventional vehicle at one step.
type snapshot struct {
	states map[int]world.State
}

// Generate runs the simulator and produces prediction samples.
func Generate(cfg Config, rng *rand.Rand) (*Dataset, error) {
	if cfg.Rollouts <= 0 || cfg.StepsPerRollout <= 0 {
		return nil, fmt.Errorf("ngsim: Rollouts and StepsPerRollout must be positive")
	}
	if cfg.Horizon < 1 {
		cfg.Horizon = 1
	}
	z := cfg.Sensor.Z
	window := z + cfg.Horizon
	builder := phantom.NewBuilder(phantom.Config{
		Lanes:     cfg.Traffic.World.Lanes,
		LaneWidth: cfg.Traffic.World.LaneWidth,
		R:         cfg.Sensor.R,
		Dt:        cfg.Traffic.World.Dt,
	})
	ds := &Dataset{}
	for r := 0; r < cfg.Rollouts; r++ {
		sim, err := traffic.New(cfg.Traffic, rng)
		if err != nil {
			return nil, err
		}
		// The ego perspectives come from conventional vehicles; park the
		// controlled AV far off the segment so it does not participate.
		sim.AV.State = world.State{Lat: 1, Lon: -1e6, V: cfg.Traffic.World.VMin}
		var history []snapshot
		for step := 0; step < cfg.WarmupSteps+cfg.StepsPerRollout+cfg.Horizon; step++ {
			sim.Step(world.Maneuver{B: world.LaneKeep, A: 0})
			history = append(history, snap(sim))
			if len(history) > window {
				history = history[len(history)-window:]
			}
			if step < cfg.WarmupSteps || len(history) < window {
				continue
			}
			// history holds frames for steps t-z+1..t+1 (z+1 snapshots);
			// the sample time t is history[z-1].
			ids := vehicleIDs(history[z-1])
			for e := 0; e < cfg.EgosPerStep && len(ids) > 0; e++ {
				egoID := ids[rng.Intn(len(ids))]
				s := buildSample(builder, cfg, history, egoID, rng)
				if s != nil {
					ds.Samples = append(ds.Samples, s)
				}
			}
		}
	}
	return ds, nil
}

// snap captures the conventional-vehicle states of the simulation.
func snap(sim *traffic.Sim) snapshot {
	s := snapshot{states: make(map[int]world.State, len(sim.Vehicles))}
	for _, v := range sim.Vehicles {
		s.states[v.ID] = v.State
	}
	return s
}

// vehicleIDs lists the vehicles present in a snapshot in ID order, so the
// generator is deterministic for a fixed seed.
func vehicleIDs(s snapshot) []int {
	ids := make([]int, 0, len(s.states))
	for id := range s.states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// buildSample reconstructs the ego's z-frame sensor history from the
// global snapshots, runs phantom construction, and attaches ground truth.
// It returns nil when the ego disappears inside the window.
func buildSample(builder *phantom.Builder, cfg Config, history []snapshot, egoID int, rng *rand.Rand) *Sample {
	z := cfg.Sensor.Z
	sens := sensor.New(cfg.Sensor, cfg.Traffic.World.LaneWidth)
	for t := 0; t < z; t++ {
		egoState, ok := history[t].states[egoID]
		if !ok {
			return nil
		}
		others := make([]*traffic.Vehicle, 0, len(history[t].states)-1)
		for _, id := range vehicleIDs(history[t]) {
			if id == egoID {
				continue
			}
			noisy := history[t].states[id]
			noisy.Lon += rng.NormFloat64() * cfg.NoiseLon
			noisy.V += rng.NormFloat64() * cfg.NoiseV
			others = append(others, &traffic.Vehicle{ID: id, State: noisy})
		}
		sens.Observe(egoState, others)
	}
	g := builder.Build(sens.History())
	if g == nil {
		return nil
	}
	egoNow, ok := history[z-1].states[egoID]
	if !ok {
		return nil
	}
	s := &Sample{Graph: g}
	fill := func(future snapshot, truth *[phantom.NumSlots][3]float64, mask *[phantom.NumSlots]bool) {
		for i := 0; i < phantom.NumSlots; i++ {
			info := g.Info[i]
			if info.Kind != phantom.NotMissing {
				mask[i] = true
				continue
			}
			fs, ok := future.states[info.ID]
			if !ok {
				mask[i] = true
				continue
			}
			truth[i] = [3]float64{
				world.RelLat(fs, egoNow, cfg.Traffic.World.LaneWidth),
				world.RelLon(fs, egoNow),
				world.RelV(fs, egoNow),
			}
		}
	}
	fill(history[z], &s.Truth, &s.Mask) // step t+1
	for h := 2; h <= cfg.Horizon && z-1+h < len(history); h++ {
		var truth [phantom.NumSlots][3]float64
		var mask [phantom.NumSlots]bool
		fill(history[z-1+h], &truth, &mask)
		s.TruthK = append(s.TruthK, truth)
		s.MaskK = append(s.MaskK, mask)
	}
	return s
}
