// Package sensor models the autonomous vehicle's onboard perception
// hardware with the two limitations the paper's enhanced perception module
// is designed around: a finite detection radius R and poor detection
// accuracy under occlusion. The simulator knows the global truth (as SUMO
// does); the sensor applies geometry to decide what the AV can actually
// see, and maintains the rolling z-step observation history the phantom
// construction and LST-GAT models consume.
package sensor

import (
	"math"

	"head/internal/traffic"
	"head/internal/world"
)

// Config configures the sensor geometry.
type Config struct {
	// R is the detection radius in meters (paper: 100 m).
	R float64
	// VehicleWidth is the apparent width of an occluding vehicle in
	// meters; a target within the angular shadow cast by a nearer vehicle
	// is invisible.
	VehicleWidth float64
	// Z is the number of historical time steps retained (paper: 5).
	Z int
}

// DefaultConfig returns the paper's sensor settings: R = 100 m, z = 5.
func DefaultConfig() Config {
	return Config{R: 100, VehicleWidth: 2.0, Z: 5}
}

// Observation is one vehicle the sensor detected at one time step.
type Observation struct {
	ID    int
	State world.State
}

// Frame is the sensor output at one time step: the AV's own state and the
// set of observed conventional vehicles, keyed by vehicle ID.
type Frame struct {
	AV       world.State
	Observed map[int]world.State
}

// Sensor detects surrounding vehicles and retains the last Z frames.
type Sensor struct {
	Cfg       Config
	LaneWidth float64
	frames    []Frame

	// steady-state scratch: detection candidates and recycled observation
	// maps, so a warmed-up sensor observes without allocating.
	states   []world.State
	obs      []Observation
	freeMaps []map[int]world.State
}

// New returns a sensor for a road with the given lane width.
func New(cfg Config, laneWidth float64) *Sensor {
	return &Sensor{Cfg: cfg, LaneWidth: laneWidth}
}

// position returns the planar position of a state: x along the road, y
// across it (lane centers).
func (s *Sensor) position(st world.State) (x, y float64) {
	return st.Lon, float64(st.Lat) * s.LaneWidth
}

// distance returns the planar distance between two states.
func (s *Sensor) distance(a, b world.State) float64 {
	ax, ay := s.position(a)
	bx, by := s.position(b)
	return math.Hypot(ax-bx, ay-by)
}

// InRange reports whether target is within the detection radius of av.
func (s *Sensor) InRange(av, target world.State) bool {
	return s.distance(av, target) <= s.Cfg.R
}

// Occluded reports whether target is hidden from av by any of the blockers:
// a blocker occludes the target when it is strictly nearer to the AV and
// the angular separation between the two sight lines is smaller than the
// blocker's angular half-width.
func (s *Sensor) Occluded(av, target world.State, blockers []world.State) bool {
	ax, ay := s.position(av)
	tx, ty := s.position(target)
	dt := math.Hypot(tx-ax, ty-ay)
	if dt == 0 {
		return false
	}
	angT := math.Atan2(ty-ay, tx-ax)
	for _, b := range blockers {
		bx, by := s.position(b)
		db := math.Hypot(bx-ax, by-ay)
		if db <= 0 || db >= dt {
			continue
		}
		angB := math.Atan2(by-ay, bx-ax)
		diff := math.Abs(angleDiff(angT, angB))
		halfWidth := math.Atan2(s.Cfg.VehicleWidth/2, db)
		if diff < halfWidth {
			return true
		}
	}
	return false
}

// angleDiff returns the signed difference a−b wrapped to (−π, π].
func angleDiff(a, b float64) float64 {
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// occludedFrom reports whether the state at index target of s.states is
// hidden from av by any other state, mirroring Occluded without building a
// per-candidate blockers slice.
func (s *Sensor) occludedFrom(av world.State, target int) bool {
	ax, ay := s.position(av)
	tx, ty := s.position(s.states[target])
	dt := math.Hypot(tx-ax, ty-ay)
	if dt == 0 {
		return false
	}
	angT := math.Atan2(ty-ay, tx-ax)
	for i, b := range s.states {
		if i == target {
			continue
		}
		bx, by := s.position(b)
		db := math.Hypot(bx-ax, by-ay)
		if db <= 0 || db >= dt {
			continue
		}
		angB := math.Atan2(by-ay, bx-ax)
		diff := math.Abs(angleDiff(angT, angB))
		halfWidth := math.Atan2(s.Cfg.VehicleWidth/2, db)
		if diff < halfWidth {
			return true
		}
	}
	return false
}

// Detect returns the vehicles visible from av: within range and not
// occluded by any other conventional vehicle. The returned slice aliases
// sensor-owned scratch and is valid until the next Detect or Observe.
func (s *Sensor) Detect(av world.State, vehicles []*traffic.Vehicle) []Observation {
	s.states = s.states[:0]
	for _, v := range vehicles {
		s.states = append(s.states, v.State)
	}
	s.obs = s.obs[:0]
	for i, v := range vehicles {
		if !s.InRange(av, v.State) {
			continue
		}
		if s.occludedFrom(av, i) {
			continue
		}
		s.obs = append(s.obs, Observation{ID: v.ID, State: v.State})
	}
	return s.obs
}

// Observe runs detection and appends the resulting frame to the rolling
// history, returning the frame. Evicted frames' observation maps are
// recycled, so a warmed-up history window observes without allocating.
func (s *Sensor) Observe(av world.State, vehicles []*traffic.Vehicle) Frame {
	obs := s.Detect(av, vehicles)
	m := s.takeMap(len(obs))
	for _, o := range obs {
		m[o.ID] = o.State
	}
	if s.Cfg.Z > 0 && len(s.frames) >= s.Cfg.Z {
		// Evict the oldest frame in place: shift the window down and hand
		// its map back to the pool.
		evicted := s.frames[0].Observed
		copy(s.frames, s.frames[1:])
		s.frames = s.frames[:s.Cfg.Z-1]
		if evicted != nil {
			clear(evicted)
			s.freeMaps = append(s.freeMaps, evicted)
		}
	}
	f := Frame{AV: av, Observed: m}
	s.frames = append(s.frames, f)
	return f
}

// takeMap pops a recycled observation map or makes a fresh one.
func (s *Sensor) takeMap(sizeHint int) map[int]world.State {
	if n := len(s.freeMaps); n > 0 {
		m := s.freeMaps[n-1]
		s.freeMaps = s.freeMaps[:n-1]
		return m
	}
	return make(map[int]world.State, sizeHint)
}

// History returns the retained frames, oldest first. Fewer than Z frames
// are returned until the buffer warms up.
func (s *Sensor) History() []Frame { return s.frames }

// Ready reports whether a full z-step history has been accumulated.
func (s *Sensor) Ready() bool { return len(s.frames) >= s.Cfg.Z }

// Reset clears the history (between episodes), recycling the frames'
// observation maps.
func (s *Sensor) Reset() {
	for i := range s.frames {
		if m := s.frames[i].Observed; m != nil {
			clear(m)
			s.freeMaps = append(s.freeMaps, m)
			s.frames[i].Observed = nil
		}
	}
	s.frames = s.frames[:0]
}
