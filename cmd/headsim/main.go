// Command headsim reproduces the end-to-end evaluation of the HEAD paper:
// Table I (baselines IDM-LC, ACC-LC, DRL-SC, TP-BTS vs HEAD) and, with
// -ablation, Table II (the HEAD-variant ablation study). With -quality-out
// it additionally profiles every decision the full HEAD policy makes
// during evaluation and writes the behavioral baseline
// (quality_baseline.json) headserve's drift detection consumes.
//
// Usage:
//
//	headsim [-batch-envs N] [-scale quick|record|paper] [-ablation] [-episodes N] [-train N] [-seed N] [-workers N] [-debug-addr :8080] [-progress] [-trace-out dir] [-trace-sample 0.1] [-quality-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"head/internal/experiments"
	"head/internal/obs/quality"
	"head/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("headsim: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick, record or paper")
		ablation  = flag.Bool("ablation", false, "run the Table II ablation study instead of Table I")
		episodes  = flag.Int("episodes", 0, "override the number of test episodes")
		train     = flag.Int("train", 0, "override the number of training episodes")
		seed      = flag.Int64("seed", 0, "override the random seed")
		workers   = flag.Int("workers", 0, "max parallel workers (0 = all cores; results are identical for any value)")
		batchEnvs = flag.Int("batch-envs", 0, "lock-step batched execution width for evaluation and training (<=1 = serial; results are identical for any value)")
		backendN  = flag.String("backend", "", "tensor backend for model forwards: f64 (default, bit-identical golden path) or f32 (float32 fast path)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/pprof/* and /debug/vars on this address (e.g. :8080; empty disables)")
		progress  = flag.Bool("progress", false, "print a live heartbeat line per episode/epoch to stderr")
		traceOut  = flag.String("trace-out", "", "directory to write trace.json (Chrome trace-event JSON) and decisions.jsonl into (empty disables tracing)")
		traceSmpl = flag.Float64("trace-sample", 1, "fraction of steps traced, deterministic per (lane, episode, step); 0 or 1 traces every step")
		qualOut   = flag.String("quality-out", "", "directory to write the HEAD decision-quality baseline (quality_baseline.json) into after the table run (empty disables)")
	)
	flag.Parse()
	if _, err := tensor.Lookup(*backendN); err != nil {
		log.Fatal(err)
	}

	s, err := scaleByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	if *episodes > 0 {
		s.TestEpisodes = *episodes
	}
	if *train > 0 {
		s.TrainEpisodes = *train
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.Workers = *workers
	s.BatchEnvs = *batchEnvs
	s.Backend = *backendN
	srv, finishTrace, err := s.ObserveDefault(*progress, *debugAddr, *traceOut, *traceSmpl)
	if err != nil {
		log.Fatal(err)
	}
	if srv != nil {
		defer srv.Close()
		log.Printf("debug server on http://%s (/metrics, /debug/pprof/, /debug/vars, /debug/trace)", srv.Addr())
	}
	defer func() {
		if err := finishTrace(); err != nil {
			log.Print("trace: ", err)
		}
	}()

	if *qualOut != "" {
		// Profile the full HEAD policy's evaluation decisions; the other
		// methods and variants evaluate unprofiled.
		s.Quality = quality.NewRecorder("HEAD")
	}

	if *ablation {
		rows, err := experiments.TableII(s)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEndToEnd(os.Stdout, "Table II — Ablation Study of HEAD-Variants and HEAD", rows)
	} else {
		rows, err := experiments.TableI(s)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintEndToEnd(os.Stdout, "Table I — End-to-End Performance of Baselines and HEAD", rows)
	}

	if *qualOut != "" {
		if err := os.MkdirAll(*qualOut, 0o755); err != nil {
			log.Fatal(err)
		}
		b := s.Quality.Baseline(quality.Baseline{
			Tool: "headsim", Scale: *scaleName, Seed: s.Seed,
			ConfigHash: s.ConfigHash(), Episodes: s.TestEpisodes,
		})
		if b.Steps == 0 {
			log.Fatal("quality baseline: no HEAD decisions profiled")
		}
		path := filepath.Join(*qualOut, quality.BaselineFile)
		if err := b.Write(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("quality baseline over %d decisions written to %s", b.Steps, path)
	}
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.Quick(), nil
	case "record":
		return experiments.Record(), nil
	case "paper":
		return experiments.Paper(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want quick, record or paper)", name)
	}
}
