package quality

import (
	"strings"
	"testing"
	"time"

	"head/internal/obs"
)

// testBaseline profiles a synthetic "calm cruising" policy: lane-keep at
// ~18 m/s with moderate accel, a handful of neighbors, mid-range TTC.
func testBaseline(t *testing.T) *Baseline {
	t.Helper()
	rec := NewRecorder("")
	for i := 0; i < 600; i++ {
		rec.Observe(calmSample(i))
	}
	return rec.Baseline(Baseline{Tool: "test", Scale: "quick", Seed: 7, ConfigHash: "deadbeef", Episodes: 3})
}

func calmSample(i int) Sample {
	return Sample{
		Behavior: 2, Accel: 0.2 - float64(i%3)*0.2, Speed: 17 + float64(i%5)*0.5,
		Neighbors: 3 + i%2, TTC: 4 + float64(i%4), TTCValid: true,
		AttnEntropy: 1.0 + float64(i%3)*0.1, AttnValid: true,
	}
}

func shiftedSample(i int) Sample {
	// Dense, slow, tailgating traffic with erratic accel — every serve
	// metric moves.
	return Sample{
		Behavior: i % 2, Accel: -2.5 + float64(i%2), Speed: 4 + float64(i%3),
		Neighbors: 10 + i%3, TTC: 0.8, TTCValid: true,
		AttnEntropy: 0.3, AttnValid: true,
	}
}

func TestMonitorMatchedTrafficOK(t *testing.T) {
	mon := NewMonitor(testBaseline(t), MonitorConfig{})
	for i := 0; i < 400; i++ {
		mon.Observe(calmSample(i))
	}
	st := mon.Status()
	if !st.OK || st.Status != "ok" {
		t.Fatalf("matched traffic: status=%q ok=%v worst=%g(%s)", st.Status, st.OK, st.WorstPSI, st.WorstMetric)
	}
	if st.Samples != 400 {
		t.Fatalf("samples = %d, want 400", st.Samples)
	}
	if st.WorstPSI >= st.WarnPSI {
		t.Fatalf("matched traffic: worst PSI %g crossed warn %g", st.WorstPSI, st.WarnPSI)
	}
	if len(st.Metrics) != len(ServeMetrics) {
		t.Fatalf("tracked %d metrics, want %d", len(st.Metrics), len(ServeMetrics))
	}
	if st.BaselineTool != "test" || st.BaselineHash != "deadbeef" {
		t.Fatalf("baseline provenance lost: %+v", st)
	}
}

func TestMonitorShiftedTrafficPages(t *testing.T) {
	mon := NewMonitor(testBaseline(t), MonitorConfig{})
	for i := 0; i < 400; i++ {
		mon.Observe(shiftedSample(i))
	}
	st := mon.Status()
	if st.OK || st.Status == "ok" {
		t.Fatalf("shifted traffic must not report ok: %+v", st)
	}
	if st.WorstPSI < st.WarnPSI {
		t.Fatalf("shifted traffic: worst PSI %g under warn %g", st.WorstPSI, st.WarnPSI)
	}
}

func TestMonitorEmptyWindowOK(t *testing.T) {
	st := NewMonitor(testBaseline(t), MonitorConfig{}).Status()
	if !st.OK || st.Samples != 0 {
		t.Fatalf("empty window: %+v, want ok with 0 samples", st)
	}
}

func TestMonitorWindowAgesOut(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	mon := NewMonitor(testBaseline(t), MonitorConfig{Window: time.Minute, Clock: clock})
	for i := 0; i < 200; i++ {
		mon.Observe(shiftedSample(i))
	}
	if st := mon.Status(); st.OK {
		t.Fatalf("shifted window must warn, got %+v", st)
	}
	// Two full windows later the drifted samples have aged out...
	now = now.Add(2 * time.Minute)
	if st := mon.Status(); !st.OK || st.Samples != 0 {
		t.Fatalf("aged-out window: %+v, want empty ok", st)
	}
	// ...and fresh matched traffic scores clean.
	for i := 0; i < 200; i++ {
		mon.Observe(calmSample(i))
	}
	if st := mon.Status(); !st.OK {
		t.Fatalf("recovered traffic: %+v, want ok", st)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var mon *Monitor
	mon.Observe(calmSample(0))
	if st := mon.Status(); !st.OK || st.Status != "ok" {
		t.Fatalf("nil monitor status = %+v, want ok", st)
	}
	mon.Bind(obs.NewRegistry(), "quality")
	if mon.Baseline() != nil {
		t.Fatal("nil monitor must have nil baseline")
	}
}

func TestMonitorBindGauges(t *testing.T) {
	reg := obs.NewRegistry()
	mon := NewMonitor(testBaseline(t), MonitorConfig{})
	mon.Bind(reg, "quality")
	for i := 0; i < 100; i++ {
		mon.Observe(shiftedSample(i))
	}
	snap := reg.Snapshot() // runs the scrape hook
	if snap["quality.samples"] != 100 {
		t.Fatalf("quality.samples = %g, want 100", snap["quality.samples"])
	}
	if snap["quality.psi_worst"] <= 0 {
		t.Fatalf("quality.psi_worst = %g, want > 0", snap["quality.psi_worst"])
	}
	if snap["quality.status"] < 1 {
		t.Fatalf("quality.status = %g, want warn/page level", snap["quality.status"])
	}
	found := false
	for name := range snap {
		if strings.HasPrefix(name, "quality.psi.") {
			found = true
		}
	}
	if !found {
		t.Fatal("no per-metric quality.psi.* gauges in snapshot")
	}
}

// TestMonitorToleratesPartialBaseline pins the compatibility contract: a
// baseline missing some serve-side metrics (older exporter) still yields
// a working monitor over the intersection.
func TestMonitorToleratesPartialBaseline(t *testing.T) {
	b := testBaseline(t)
	delete(b.Metrics, MetricAttnEntropy)
	delete(b.Metrics, MetricNeighbors)
	mon := NewMonitor(b, MonitorConfig{})
	for i := 0; i < 100; i++ {
		mon.Observe(calmSample(i))
	}
	st := mon.Status()
	if !st.OK {
		t.Fatalf("partial baseline on matched traffic: %+v", st)
	}
	if len(st.Metrics) != len(ServeMetrics)-2 {
		t.Fatalf("tracked %d metrics, want %d", len(st.Metrics), len(ServeMetrics)-2)
	}
}
