package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"head/internal/obs"
)

func TestSeedStableAndSplit(t *testing.T) {
	if Seed(7, 3) != Seed(7, 3) {
		t.Fatal("Seed is not a pure function")
	}
	seen := map[int64]bool{}
	for unit := int64(0); unit < 1000; unit++ {
		s := Seed(7, unit)
		if seen[s] {
			t.Fatalf("seed collision at unit %d", unit)
		}
		seen[s] = true
	}
	if Seed(7, 0) == Seed(8, 0) {
		t.Error("different bases produced the same child seed")
	}
	// Nesting must keep streams decorrelated too.
	if Seed(Seed(7, 1), 0) == Seed(Seed(7, 2), 0) {
		t.Error("nested derivation collided")
	}
}

func TestRandIndependentStreams(t *testing.T) {
	a, b := Rand(7, 0), Rand(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling streams overlapped %d/100 draws", same)
	}
}

func TestMapOrderAndWorkerInvariance(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := Map(context.Background(), 100, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8, 0} {
		got, err := Map(context.Background(), 100, w, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 1000, 4, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("error did not cancel remaining work (%d units ran)", n)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 10, 4, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), 64, 3, func(i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent units, want <= 3", p)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("positive worker counts must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("non-positive worker counts must resolve to at least one")
	}
}

func TestForEachInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	const n = 12
	err := ForEach(context.Background(), n, 3, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["parallel.units"] != n {
		t.Errorf("parallel.units = %g, want %d", snap["parallel.units"], n)
	}
	if snap["parallel.unit_seconds.count"] != n {
		t.Errorf("parallel.unit_seconds.count = %g, want %d", snap["parallel.unit_seconds.count"], n)
	}
	if snap["parallel.queue_wait_seconds.count"] != n {
		t.Errorf("parallel.queue_wait_seconds.count = %g, want %d", snap["parallel.queue_wait_seconds.count"], n)
	}
	if snap["parallel.pool_workers"] != 3 {
		t.Errorf("parallel.pool_workers = %g, want 3", snap["parallel.pool_workers"])
	}
	if snap["parallel.busy_workers"] != 0 {
		t.Errorf("parallel.busy_workers = %g after quiescence, want 0", snap["parallel.busy_workers"])
	}

	// Detached again: further fan-outs must not record.
	SetMetrics(nil)
	if err := ForEach(context.Background(), 4, 2, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot()["parallel.units"]; got != n {
		t.Errorf("detached ForEach still recorded: units = %g", got)
	}
}

func TestMapInstrumentationWorkerInvariant(t *testing.T) {
	// The registry only observes; Map results stay bit-identical for any
	// worker count with metrics attached.
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	want, err := Map(context.Background(), 16, 1, func(i int) (int64, error) {
		return Seed(99, int64(i)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Map(context.Background(), 16, 8, func(i int) (int64, error) {
		return Seed(99, int64(i)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("result %d differs across worker counts", i)
		}
	}
}
