package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"head/internal/obs"
)

// ErrClosed is returned by Submit after Close has begun: the service is
// draining and accepts no new work.
var ErrClosed = errors.New("serve: batcher closed")

// BatcherConfig sizes the micro-batcher.
type BatcherConfig struct {
	// MaxBatch is B: a flush fires as soon as this many requests are
	// pending (default 8).
	MaxBatch int
	// MaxWait is the deadline arm of size-or-deadline: a flush fires this
	// long after its first request even if the batch is short (default
	// 2ms). Zero keeps the default; latency-sensitive callers trade it
	// against batch occupancy.
	MaxWait time.Duration
	// Queue bounds the submit channel; once full, Submit blocks (applying
	// backpressure to clients) until the flush loop drains it or the
	// caller's context expires. Default 4×MaxBatch.
	Queue int
	// Replicas is how many worker goroutines (each owning one Decider)
	// consume flushed batches concurrently (default 1).
	Replicas int
	// Metrics receives the service counters and histograms (nil disables):
	// serve.requests / serve.errors counters, serve.queue_wait_s and
	// serve.decide_s latency histograms, and a serve.batch_size occupancy
	// histogram. Strictly out of band, like every obs sink.
	Metrics *obs.Registry
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c
}

// Result is one served decision plus the timestamps that attribute its
// latency: Enqueued (Submit accepted it), Flushed (the size-or-deadline
// loop sealed its batch), InferStart (a replica worker picked the sealed
// batch up), InferDone (the batched forward returned), Replied (the
// response was handed to the waiter), and the size of the batch it rode
// in. Consecutive differences are the request's queue / batch_seal /
// replica_infer phases; request telemetry records them as spans.
type Result struct {
	Decision   Decision
	Err        error
	Enqueued   time.Time
	Flushed    time.Time
	InferStart time.Time
	InferDone  time.Time
	Replied    time.Time
	BatchSize  int
}

// pending is one in-flight request: the observation, its enqueue
// timestamp, and the buffered response channel its waiter blocks on.
type pending struct {
	obs   *Observation
	enq   time.Time
	flush time.Time
	ch    chan Result
}

// Batcher is the size-or-deadline micro-batcher: Submit places requests on
// a bounded channel, a flush loop seals batches of up to MaxBatch requests
// or MaxWait after the first, and replica workers answer each batch
// through one batched forward pass. Shutdown is ordered: Close stops new
// admissions, waits for every in-flight request to receive its response,
// then joins the flush loop and workers — no request is ever dropped
// without a reply.
type Batcher struct {
	cfg     BatcherConfig
	submit  chan *pending
	batches chan []*pending
	bufs    chan []*pending

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	flusher  sync.WaitGroup
	workers  sync.WaitGroup

	mRequests  *obs.Counter
	mErrors    *obs.Counter
	mQueueWait *obs.Histogram
	mDecide    *obs.Histogram
	mBatchSize *obs.Histogram
}

// NewBatcher starts the flush loop and cfg.Replicas workers, each owning
// one Decider from newReplica (called once per worker, so each worker gets
// private model state).
func NewBatcher(cfg BatcherConfig, newReplica func() Decider) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:     cfg,
		submit:  make(chan *pending, cfg.Queue),
		batches: make(chan []*pending, cfg.Replicas),
		bufs:    make(chan []*pending, cfg.Replicas+2),
	}
	if reg := cfg.Metrics; reg != nil {
		b.mRequests = reg.Counter("serve.requests")
		b.mErrors = reg.Counter("serve.errors")
		b.mQueueWait = reg.Histogram("serve.queue_wait_s")
		b.mDecide = reg.Histogram("serve.decide_s")
		b.mBatchSize = reg.Histogram("serve.batch_size", 1, 2, 4, 8, 16, 32, 64)
	}
	b.flusher.Add(1)
	go b.flushLoop()
	for i := 0; i < cfg.Replicas; i++ {
		b.workers.Add(1)
		go b.worker(newReplica())
	}
	return b
}

// Config reports the effective (default-filled) configuration.
func (b *Batcher) Config() BatcherConfig { return b.cfg }

// Submit enqueues one observation and blocks until its decision arrives,
// the context expires, or the batcher is closed. The observation must stay
// untouched until Submit returns (replicas read it during the flush). The
// returned error equals Result.Err for replica failures, so callers can
// branch on the Result alone.
func (b *Batcher) Submit(ctx context.Context, o *Observation) (Result, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Result{}, ErrClosed
	}
	b.inflight.Add(1)
	b.mu.Unlock()
	defer b.inflight.Done()

	p := &pending{obs: o, enq: time.Now(), ch: make(chan Result, 1)}
	select {
	case b.submit <- p:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	select {
	case r := <-p.ch:
		b.observe(r)
		return r, r.Err
	case <-ctx.Done():
		// The reply lands in the buffered channel later and is dropped
		// with the pending struct — no goroutine blocks on it.
		return Result{}, ctx.Err()
	}
}

// observe records one completed request into the metrics registry.
func (b *Batcher) observe(r Result) {
	if b.mRequests == nil {
		return
	}
	b.mRequests.Inc()
	if r.Err != nil {
		b.mErrors.Inc()
	}
	b.mQueueWait.Observe(r.Flushed.Sub(r.Enqueued).Seconds())
	b.mDecide.Observe(r.Replied.Sub(r.Flushed).Seconds())
	b.mBatchSize.Observe(float64(r.BatchSize))
}

// Close drains and stops the batcher in order: new Submits are refused,
// every already-admitted request runs to completion and receives its
// response, then the flush loop and replica workers exit. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	// Every admitted Submit holds an inflight token until it has its
	// response; the flush loop and workers are still running, so waiting
	// here is the drain.
	b.inflight.Wait()
	close(b.submit)
	b.flusher.Wait()
	b.workers.Wait()
}

// takeBuf pops a recycled batch buffer or makes a fresh one.
func (b *Batcher) takeBuf() []*pending {
	select {
	case buf := <-b.bufs:
		return buf[:0]
	default:
		return make([]*pending, 0, b.cfg.MaxBatch)
	}
}

// flushLoop seals batches: it blocks for a first request, then fills until
// MaxBatch requests are aboard or MaxWait has passed since the first,
// whichever comes first, and hands the sealed batch to the workers. When
// the submit channel closes (Close after the drain) it seals any partial
// batch and closes the batch channel behind itself.
func (b *Batcher) flushLoop() {
	defer b.flusher.Done()
	defer close(b.batches)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		p, ok := <-b.submit
		if !ok {
			return
		}
		batch := append(b.takeBuf(), p)
		timer.Reset(b.cfg.MaxWait)
		fired := false
		open := true
	fill:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case q, ok := <-b.submit:
				if !ok {
					open = false
					break fill
				}
				batch = append(batch, q)
			case <-timer.C:
				fired = true
				break fill
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		now := time.Now()
		for _, q := range batch {
			q.flush = now
		}
		b.batches <- batch
		if !open {
			return
		}
	}
}

// worker answers sealed batches with one Decider: gather the observations,
// one batched decide, reply to every waiter (the whole batch shares an
// error when the decide fails or panics), recycle the buffer.
func (b *Batcher) worker(d Decider) {
	defer b.workers.Done()
	var obsBuf []*Observation
	var out []Decision
	for batch := range b.batches {
		n := len(batch)
		if cap(obsBuf) < n {
			obsBuf = make([]*Observation, n)
		}
		if cap(out) < n {
			out = make([]Decision, n)
		}
		obsBuf = obsBuf[:n]
		out = out[:n]
		for i, p := range batch {
			obsBuf[i] = p.obs
		}
		inferStart := time.Now()
		err := safeDecide(d, obsBuf, out)
		inferDone := time.Now()
		for i, p := range batch {
			r := Result{
				Err: err, Enqueued: p.enq, Flushed: p.flush,
				InferStart: inferStart, InferDone: inferDone,
				Replied: time.Now(), BatchSize: n,
			}
			if err == nil {
				r.Decision = out[i]
			}
			p.ch <- r
		}
		select {
		case b.bufs <- batch:
		default:
		}
	}
}

// safeDecide shields the worker from a mid-flight replica failure: a
// panicking Decider turns into a batch-wide error instead of tearing the
// service down, and the worker keeps serving subsequent batches.
func safeDecide(d Decider, obs []*Observation, out []Decision) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: replica panic: %v", r)
		}
	}()
	return d.DecideBatch(obs, out)
}
