package serve

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"head/internal/world"
)

// wireTestFrames builds a deterministic z-frame snapshot exercising the
// codec's edge shapes: negative lats/ids, an empty frame, varying vehicle
// counts.
func wireTestFrames(z int) []Frame {
	frames := make([]Frame, z)
	for i := range frames {
		frames[i] = Frame{AV: world.State{Lat: i - 1, Lon: 12.5 * float64(i+1), V: 3.25 - float64(i)}}
		for j := 0; j < i%3; j++ {
			frames[i].Vehicles = append(frames[i].Vehicles, Vehicle{
				ID:    -(i*10 + j),
				State: world.State{Lat: 2 - j, Lon: -7.75 * float64(j+1), V: 0.125 * float64(i*j)},
			})
		}
	}
	return frames
}

func TestWireFullRoundTrip(t *testing.T) {
	frames := wireTestFrames(5)
	enc := AppendFull(nil, []byte("sess-1"), frames)
	req, err := DecodeRequest(enc, nil)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if req.Kind != WireFull {
		t.Fatalf("kind = %d, want WireFull", req.Kind)
	}
	if string(req.Session) != "sess-1" {
		t.Fatalf("session = %q", req.Session)
	}
	if !reflect.DeepEqual(req.Frames, frames) {
		t.Fatalf("frames round-trip mismatch:\n got %+v\nwant %+v", req.Frames, frames)
	}
	// The layout is canonical: re-encoding a decoded request reproduces the
	// input bytes exactly.
	if re := AppendFull(nil, req.Session, req.Frames); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs from original encoding")
	}
}

func TestWireDeltaRoundTrip(t *testing.T) {
	newest := wireTestFrames(7)[6:]
	hash := HashFrames(wireTestFrames(7))
	enc := AppendDelta(nil, []byte("s"), hash, newest)
	req, err := DecodeRequest(enc, nil)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if req.Kind != WireDelta || req.BaseHash != hash {
		t.Fatalf("kind=%d hash=%x, want delta/%x", req.Kind, req.BaseHash, hash)
	}
	if !reflect.DeepEqual(req.Frames, newest) {
		t.Fatalf("delta frames mismatch")
	}
	if re := AppendDelta(nil, req.Session, req.BaseHash, req.Frames); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs from original encoding")
	}
}

func TestWireDecodeReusesStorage(t *testing.T) {
	a := wireTestFrames(6)
	enc := AppendFull(nil, nil, a)
	first, err := DecodeRequest(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := DecodeRequest(enc, first.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.Frames, a) {
		t.Fatalf("reused-storage decode mismatch")
	}
	if &first.Frames[0] != &second.Frames[0] {
		t.Fatalf("decode did not reuse donated frame storage")
	}
}

func TestWireRequestRejectsCorrupt(t *testing.T) {
	frames := wireTestFrames(3)
	valid := AppendFull(nil, []byte("abc"), frames)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data := mutate(append([]byte(nil), valid...))
		if _, err := DecodeRequest(data, nil); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}

	if _, err := DecodeRequest(nil, nil); err == nil {
		t.Error("empty payload accepted")
	}
	corrupt("wrong version", func(b []byte) []byte { b[0] = 99; return b })
	corrupt("unknown kind", func(b []byte) []byte { b[1] = 77; return b })
	corrupt("session length past end", func(b []byte) []byte { b[2] = 255; return b })
	corrupt("trailing bytes", func(b []byte) []byte { return append(b, 0xEE) })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("flen mismatch", func(b []byte) []byte { b[6]++; return b })
	corrupt("oversized vehicle count", func(b []byte) []byte {
		// First frame's vcount lives right after header(3)+session(3)+
		// flen(4)+count(2)+lat(4)+lon(8)+v(8).
		at := 3 + 3 + 4 + 2 + 4 + 8 + 8
		b[at], b[at+1] = 0xFF, 0xFF
		return b
	})

	// Oversized frame count: header declares 300 frames with no bodies.
	big := appendRequestHeader(nil, WireFull, nil)
	at := len(big)
	big = appendU32(big, 0)
	big = appendU16(big, 300)
	backpatchLen(big, at)
	if _, err := DecodeRequest(big, nil); err == nil {
		t.Error("300-frame header accepted")
	}

	// Delta without a session id is meaningless — nothing to advance.
	noSess := AppendDelta(nil, nil, 42, frames[:1])
	if _, err := DecodeRequest(noSess, nil); err == nil {
		t.Error("sessionless delta accepted")
	}

	// Zero frames carry no decision input.
	empty := AppendFull(nil, []byte("s"), nil)
	if _, err := DecodeRequest(empty, nil); err == nil {
		t.Error("frameless request accepted")
	}
}

func TestWireRequestTruncationNeverPanics(t *testing.T) {
	enc := AppendDelta(nil, []byte("session-xyz"), 0xDEADBEEF, wireTestFrames(4))
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeRequest(enc[:i], nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	for _, dr := range []DecideResponse{
		{
			Decision: Decision{
				Behavior: 1, BehaviorName: world.Behavior(1).String(), Accel: -1.5,
				Params: []float64{0.5, -1.5, 2.25}, AttnEntropy: 0.693,
				Attention: [][]float64{{0.25, 0.75}, {1}},
			},
			RequestID: "req-7", BatchSize: 8,
			QueueMicros: 120, SealMicros: 4, InferMicros: 900, ReplyMicros: 11, DecideMicros: 904,
		},
		{
			Decision:  Decision{Behavior: 0, BehaviorName: world.Behavior(0).String(), Accel: 2},
			RequestID: "srv-000001", BatchSize: 1,
		},
	} {
		enc := AppendResponse(nil, &dr)
		var got DecideResponse
		if err := DecodeResponse(enc, &got); err != nil {
			t.Fatalf("DecodeResponse: %v", err)
		}
		if !reflect.DeepEqual(got, dr) {
			t.Fatalf("response round-trip mismatch:\n got %+v\nwant %+v", got, dr)
		}
	}
}

func TestWireResponseRejectsCorrupt(t *testing.T) {
	dr := DecideResponse{
		Decision:  Decision{Behavior: 2, BehaviorName: world.Behavior(2).String(), Params: []float64{1}},
		RequestID: "r", BatchSize: 3,
	}
	enc := AppendResponse(nil, &dr)
	for i := 0; i < len(enc); i++ {
		var got DecideResponse
		if err := DecodeResponse(enc[:i], &got); err == nil {
			t.Fatalf("response prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}
	var got DecideResponse
	if err := DecodeResponse(append(append([]byte(nil), enc...), 1), &got); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[1] = WireFull
	if err := DecodeResponse(bad, &got); err == nil {
		t.Fatal("request kind accepted as response")
	}
}

func TestHashFramesSensitivity(t *testing.T) {
	base := wireTestFrames(4)
	h := HashFrames(base)
	if h != HashFrames(wireTestFrames(4)) {
		t.Fatal("equal snapshots hash differently")
	}
	mutations := []func([]Frame){
		func(f []Frame) { f[0].AV.Lat++ },
		func(f []Frame) { f[1].AV.Lon += 1e-9 },
		func(f []Frame) { f[3].AV.V = -f[3].AV.V },
		func(f []Frame) { f[2].Vehicles[0].ID++ },
		func(f []Frame) { f[2].Vehicles[0].State.Lon *= 2 },
	}
	for i, mut := range mutations {
		fr := wireTestFrames(4)
		mut(fr)
		if HashFrames(fr) == h {
			t.Errorf("mutation %d left the hash unchanged", i)
		}
	}
	if HashFrames(base[:3]) == HashFrames(base) {
		t.Error("dropping a frame left the hash unchanged")
	}
}

func TestErrResyncWrapped(t *testing.T) {
	c := NewSessionCache(2)
	_, err := c.Advance("ghost", 1, wireTestFrames(1))
	if !errors.Is(err, ErrResync) {
		t.Fatalf("unknown-session error does not wrap ErrResync: %v", err)
	}
}

// FuzzDecodeRequest asserts the request decoder never panics on arbitrary
// input, and that every accepted payload is canonical — re-encoding the
// decoded request reproduces the input bytes exactly.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendFull(nil, []byte("seed"), wireTestFrames(3)))
	f.Add(AppendDelta(nil, []byte("seed"), HashFrames(wireTestFrames(3)), wireTestFrames(1)))
	f.Add([]byte{wireVersion, WireFull, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data, nil)
		if err != nil {
			return
		}
		var re []byte
		switch req.Kind {
		case WireFull:
			re = AppendFull(nil, req.Session, req.Frames)
		case WireDelta:
			re = AppendDelta(nil, req.Session, req.BaseHash, req.Frames)
		default:
			t.Fatalf("decode accepted unknown kind %d", req.Kind)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeResponse asserts the response decoder never panics.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendResponse(nil, &DecideResponse{
		Decision:  Decision{Behavior: 1, Params: []float64{1, 2}, Attention: [][]float64{{0.5}}},
		RequestID: "seed", BatchSize: 2,
	}))
	f.Add([]byte{wireVersion, wireResponse})
	f.Fuzz(func(t *testing.T, data []byte) {
		var dr DecideResponse
		_ = DecodeResponse(data, &dr)
	})
}
