package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"head/internal/world"
)

func kraussDriver() (DriverParams, KraussParams) {
	return DriverParams{
		DesiredV: 25, TimeHeadway: 1.2, MinGap: 2, MaxAccel: 2, ComfortDecel: 2,
	}, KraussParams{Sigma: 0.5}
}

func TestCarFollowingString(t *testing.T) {
	if IDM.String() != "IDM" || Krauss.String() != "Krauss" {
		t.Error("CarFollowing.String mismatch")
	}
	if CarFollowing(9).String() != "CarFollowing(9)" {
		t.Error("unknown model string")
	}
}

func TestKraussFreeRoadAccelerates(t *testing.T) {
	p, k := kraussDriver()
	a := KraussAccel(p, k, 10, math.Inf(1), 0, 0, 0.5)
	if math.Abs(a-p.MaxAccel) > 1e-9 {
		t.Errorf("free-road accel without dawdle = %g, want %g", a, p.MaxAccel)
	}
	// At desired velocity without dawdle: no change.
	if a := KraussAccel(p, k, 25, math.Inf(1), 0, 0, 0.5); a != 0 {
		t.Errorf("accel at v0 = %g, want 0", a)
	}
}

func TestKraussDawdleSlowsDown(t *testing.T) {
	p, k := kraussDriver()
	noDawdle := KraussAccel(p, k, 20, math.Inf(1), 0, 0, 0.5)
	dawdle := KraussAccel(p, k, 20, math.Inf(1), 0, 1, 0.5)
	if dawdle >= noDawdle {
		t.Errorf("dawdling should reduce acceleration: %g vs %g", dawdle, noDawdle)
	}
}

func TestKraussBrakesBehindStoppedLeader(t *testing.T) {
	p, k := kraussDriver()
	a := KraussAccel(p, k, 20, 10, 0, 0, 0.5)
	if a >= 0 {
		t.Errorf("approach to stopped leader at 10 m gap: accel = %g, want < 0", a)
	}
}

func TestKraussNeverReverses(t *testing.T) {
	p, k := kraussDriver()
	f := func(v, gap, vLead, dawdle float64) bool {
		v = math.Abs(math.Mod(v, 30))
		gap = math.Abs(math.Mod(gap, 100))
		vLead = math.Abs(math.Mod(vLead, 30))
		dawdle = math.Abs(math.Mod(dawdle, 1))
		if math.IsNaN(v) || math.IsNaN(gap) || math.IsNaN(vLead) || math.IsNaN(dawdle) {
			return true
		}
		a := KraussAccel(p, k, v, gap, vLead, dawdle, 0.5)
		vNext := v + a*0.5
		return vNext >= -1e-9 && !math.IsNaN(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKraussSimulationRuns(t *testing.T) {
	cfg := testConfig()
	cfg.CarFollowing = Krauss
	cfg.Krauss = KraussParams{Sigma: 0.5}
	s, err := New(cfg, rand.New(rand.NewSource(30)))
	if err != nil {
		t.Fatal(err)
	}
	s.AV.State = world.State{Lat: 1, Lon: -1000, V: cfg.World.VMin}
	for i := 0; i < 60; i++ {
		s.Step(world.Maneuver{B: world.LaneKeep, A: 0})
		for _, v := range s.Vehicles {
			if math.IsNaN(v.State.V) || v.State.V < cfg.World.VMin-1e-9 {
				t.Fatalf("step %d: bad velocity %g", i, v.State.V)
			}
		}
	}
}

func TestKraussProducesSpeedVariance(t *testing.T) {
	// Krauss's dawdling produces more speed variance (stop-and-go
	// tendency) than deterministic IDM in dense traffic.
	variance := func(model CarFollowing, seed int64) float64 {
		cfg := testConfig()
		cfg.Density = 200
		cfg.CarFollowing = model
		cfg.Krauss = KraussParams{Sigma: 0.8}
		s, err := New(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		s.AV.State = world.State{Lat: 1, Lon: -1000, V: cfg.World.VMin}
		total := 0.0
		for i := 0; i < 80; i++ {
			s.Step(world.Maneuver{B: world.LaneKeep, A: 0})
			if i >= 40 {
				total += s.SpeedVariance(0, cfg.World.RoadLength)
			}
		}
		return total
	}
	idm := variance(IDM, 31)
	krauss := variance(Krauss, 31)
	if krauss <= idm {
		t.Errorf("Krauss variance %g not above IDM %g", krauss, idm)
	}
}

func TestMeasureFlow(t *testing.T) {
	cfg := testConfig()
	s, _ := New(cfg, rand.New(rand.NewSource(32)))
	s.Vehicles = nil
	for i := 0; i < 10; i++ {
		s.Vehicles = append(s.Vehicles, &Vehicle{
			State:    world.State{Lat: 1 + i%3, Lon: 100 + float64(i)*10, V: 20},
			ExitStep: -1,
		})
	}
	fs := s.MeasureFlow(100, 200)
	if fs.Vehicles != 10 {
		t.Errorf("Vehicles = %d, want 10", fs.Vehicles)
	}
	if math.Abs(fs.Density-100) > 1e-9 { // 10 veh in 0.1 km
		t.Errorf("Density = %g, want 100", fs.Density)
	}
	if math.Abs(fs.MeanSpeed-20) > 1e-9 {
		t.Errorf("MeanSpeed = %g, want 20", fs.MeanSpeed)
	}
	if math.Abs(fs.Flow-100*20*3.6) > 1e-6 {
		t.Errorf("Flow = %g, want %g", fs.Flow, 100*20*3.6)
	}
	// Degenerate windows.
	if got := s.MeasureFlow(200, 100); got.Vehicles != 0 {
		t.Error("inverted window should be empty")
	}
}

func TestSpeedVariance(t *testing.T) {
	cfg := testConfig()
	s, _ := New(cfg, rand.New(rand.NewSource(33)))
	s.Vehicles = []*Vehicle{
		{State: world.State{Lat: 1, Lon: 10, V: 10}, ExitStep: -1},
		{State: world.State{Lat: 1, Lon: 20, V: 20}, ExitStep: -1},
	}
	if got := s.SpeedVariance(0, 100); math.Abs(got-25) > 1e-9 {
		t.Errorf("variance = %g, want 25", got)
	}
	if got := s.SpeedVariance(500, 600); got != 0 {
		t.Errorf("empty window variance = %g, want 0", got)
	}
}

func TestSampleKraussParamsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 100; i++ {
		k := SampleKraussParams(rng)
		if k.Sigma < 0.3 || k.Sigma > 0.7 {
			t.Fatalf("sigma %g outside [0.3, 0.7]", k.Sigma)
		}
	}
}
