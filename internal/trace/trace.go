// Package trace records episode trajectories — the autonomous vehicle's
// states, maneuvers, rewards, and the surrounding traffic — and exports
// them as CSV or JSON Lines for offline analysis, plotting, or replay.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"head/internal/head"
	"head/internal/world"
)

// Step is one recorded decision step.
type Step struct {
	Step     int     `json:"step"`
	Time     float64 `json:"time"`
	Lane     int     `json:"lane"`
	Lon      float64 `json:"lon"`
	V        float64 `json:"v"`
	Behavior string  `json:"behavior"`
	Accel    float64 `json:"accel"`
	Reward   float64 `json:"reward"`
	Safety   float64 `json:"safety"`
	Eff      float64 `json:"efficiency"`
	Comfort  float64 `json:"comfort"`
	Impact   float64 `json:"impact"`
	TTC      float64 `json:"ttc"` // 0 when invalid
	RearDec  float64 `json:"rear_decel"`
	NearbyN  int     `json:"nearby"` // conventional vehicles within 100 m
}

// Trace is a recorded episode.
type Trace struct {
	Steps     []Step `json:"steps"`
	Collision bool   `json:"collision"`
	Finished  bool   `json:"finished"`
}

// Recorder accumulates a trace while driving an environment.
type Recorder struct {
	tr Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one step taken in env with maneuver m and outcome out.
// Call it immediately after env.StepManeuver.
func (r *Recorder) Record(env *head.Env, m world.Maneuver, out head.StepOutcome) {
	av := env.Sim().AV.State
	nearby := 0
	for _, v := range env.Sim().Vehicles {
		d := v.State.Lon - av.Lon
		if d > -100 && d < 100 {
			nearby++
		}
	}
	s := Step{
		Step:     env.Steps(),
		Time:     float64(env.Steps()) * env.Cfg.Traffic.World.Dt,
		Lane:     av.Lat,
		Lon:      av.Lon,
		V:        av.V,
		Behavior: m.B.String(),
		Accel:    m.A,
		Reward:   out.Reward,
		Safety:   out.Terms.Safety,
		Eff:      out.Terms.Efficiency,
		Comfort:  out.Terms.Comfort,
		Impact:   out.Terms.Impact,
		RearDec:  out.RearDecel,
		NearbyN:  nearby,
	}
	if out.TTCValid {
		s.TTC = out.TTC
	}
	r.tr.Steps = append(r.tr.Steps, s)
	r.tr.Collision = r.tr.Collision || out.Collision
	r.tr.Finished = r.tr.Finished || out.Finished
}

// Trace returns the recorded episode.
func (r *Recorder) Trace() Trace { return r.tr }

// Reset clears the recorder for a new episode.
func (r *Recorder) Reset() { r.tr = Trace{} }

// Drive runs one full episode of ctrl on env while recording every step,
// returning the trace.
func Drive(ctrl head.Controller, env *head.Env) Trace {
	rec := NewRecorder()
	env.Reset()
	ctrl.Reset()
	for !env.Done() {
		m := ctrl.Decide(env)
		out := env.StepManeuver(m)
		rec.Record(env, m, out)
	}
	return rec.Trace()
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{
	"step", "time", "lane", "lon", "v", "behavior", "accel",
	"reward", "safety", "efficiency", "comfort", "impact", "ttc", "rear_decel", "nearby",
}

// WriteCSV exports the trace as CSV with a header row.
func (t Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
	for _, s := range t.Steps {
		rec := []string{
			strconv.Itoa(s.Step), f(s.Time), strconv.Itoa(s.Lane), f(s.Lon), f(s.V),
			s.Behavior, f(s.Accel), f(s.Reward), f(s.Safety), f(s.Eff), f(s.Comfort),
			f(s.Impact), f(s.TTC), f(s.RearDec), strconv.Itoa(s.NearbyN),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// episodeEnd is the trailing JSONL record carrying the episode-level
// flags, which step lines cannot: without it Collision/Finished were
// silently dropped on a Write/Read round trip. Step has no "episode_end"
// key, so the marker unambiguously separates the footer from step lines.
type episodeEnd struct {
	EpisodeEnd bool `json:"episode_end"`
	Collision  bool `json:"collision"`
	Finished   bool `json:"finished"`
}

// WriteJSONL exports the trace as JSON Lines: one step per line, then one
// trailing {"episode_end":true,...} record with the episode-level
// Collision/Finished flags so ReadJSONL reconstructs the Trace exactly.
func (t Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Steps {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("trace: jsonl: %w", err)
		}
	}
	end := episodeEnd{EpisodeEnd: true, Collision: t.Collision, Finished: t.Finished}
	if err := enc.Encode(end); err != nil {
		return fmt.Errorf("trace: jsonl footer: %w", err)
	}
	return nil
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL. Streams
// written before the episode_end footer existed still parse; their
// episode flags simply stay false.
func ReadJSONL(r io.Reader) (Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	for dec.More() {
		var line struct {
			Step
			episodeEnd
		}
		if err := dec.Decode(&line); err != nil {
			return t, fmt.Errorf("trace: jsonl decode: %w", err)
		}
		if line.EpisodeEnd {
			t.Collision = t.Collision || line.Collision
			t.Finished = t.Finished || line.Finished
			continue
		}
		t.Steps = append(t.Steps, line.Step)
	}
	return t, nil
}

// Summary aggregates a trace into the per-episode quantities the paper's
// metrics build on.
type Summary struct {
	Steps       int
	Duration    float64
	MeanV       float64
	MeanJerk    float64
	TotalReward float64
	LaneChanges int
	MinTTC      float64 // 0 when no valid TTC was seen
}

// Summarize computes a Summary.
func (t Trace) Summarize() Summary {
	s := Summary{Steps: len(t.Steps)}
	if s.Steps == 0 {
		return s
	}
	prevA := 0.0
	prevLane := t.Steps[0].Lane
	minTTC := 0.0
	for i, st := range t.Steps {
		s.Duration = st.Time
		s.MeanV += st.V
		s.TotalReward += st.Reward
		if i > 0 {
			s.MeanJerk += absf(st.Accel - prevA)
			if st.Lane != prevLane {
				s.LaneChanges++
			}
		}
		prevA = st.Accel
		prevLane = st.Lane
		if st.TTC > 0 && (minTTC == 0 || st.TTC < minTTC) {
			minTTC = st.TTC
		}
	}
	s.MeanV /= float64(s.Steps)
	if s.Steps > 1 {
		s.MeanJerk /= float64(s.Steps - 1)
	}
	s.MinTTC = minTTC
	return s
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
