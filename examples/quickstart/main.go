// Quickstart: build a HEAD environment, train a small BP-DQN decision
// agent for a handful of episodes, and drive one test episode end to end,
// printing the maneuver decisions and the episode metrics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"head/internal/eval"
	"head/internal/experiments"
	"head/internal/head"
	"head/internal/rl"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(42))

	// 1. A laptop-scale environment: a 600 m six-lane road at 120 veh/km.
	scale := experiments.Quick()
	scale.TrainEpisodes = 20 // quickstart budget

	// 2. Train the enhanced perception model (LST-GAT) on the synthetic
	// NGSIM-substitute dataset.
	fmt.Println("training LST-GAT perception model...")
	predictor, err := experiments.TrainedPredictor(scale, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the BP-DQN decision agent inside the environment.
	fmt.Println("training BP-DQN decision agent...")
	cfg := head.DefaultEnvConfig()
	cfg.Traffic.World.RoadLength = scale.RoadLength
	cfg.Traffic.Density = scale.Density
	cfg.MaxSteps = scale.MaxSteps
	env := head.NewEnv(cfg, predictor, rng)
	rlCfg := rl.DefaultPDQNConfig()
	rlCfg.Warmup = 150
	agent := rl.NewBPDQN(rlCfg, env.Spec(), env.AMax(), 32, rng)
	res := rl.Train(agent, env, scale.TrainEpisodes, scale.MaxSteps)
	fmt.Printf("trained %d episodes in %v\n", len(res.EpisodeRewards), res.TCT.Round(1e6))

	// 4. Drive one greedy test episode, narrating the decisions.
	fmt.Println("\ndriving one test episode:")
	testEnv := head.NewEnv(cfg, predictor, rand.New(rand.NewSource(7)))
	ctrl := &head.AgentController{ControllerName: "HEAD", Agent: agent}
	testEnv.Reset()
	for !testEnv.Done() {
		m := ctrl.Decide(testEnv)
		out := testEnv.StepManeuver(m)
		if testEnv.Steps()%20 == 0 || out.Done {
			av := testEnv.Sim().AV.State
			fmt.Printf("  t=%5.1fs lane=%d lon=%6.1fm v=%5.1fm/s maneuver=%v reward=%+.2f\n",
				float64(testEnv.Steps())*cfg.Traffic.World.Dt, av.Lat, av.Lon, av.V, m, out.Reward)
		}
	}

	// 5. Aggregate the paper's metrics over a few episodes.
	fmt.Println("\nevaluating over 5 episodes:")
	metricsEnv := head.NewEnv(cfg, predictor, rand.New(rand.NewSource(8)))
	m := eval.RunEpisodes(ctrl, metricsEnv, 5)
	fmt.Printf("  AvgDT-A %.1fs  AvgV-A %.1fm/s  AvgJ-A %.2fm/s²  Avg#-CA %.1f  MinTTC-A %.2fs\n",
		m.AvgDTA, m.AvgVA, m.AvgJA, m.AvgCA, m.MinTTCA)
}
