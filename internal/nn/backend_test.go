package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"head/internal/tensor"
)

func relErr(got, want *tensor.Matrix) float64 {
	worst := 0.0
	for i := range got.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if s := math.Abs(want.Data[i]); s > 1e-6 {
			d /= s
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestBackendForwardParity runs the same Linear/LSTM/GAT weights under
// both backends: the f64 forward must be bit-identical to a never-touched
// layer (SetBackend(F64) is a no-op), and the f32 forward must track it to
// float32-level relative error in both serial and batch form.
func TestBackendForwardParity(t *testing.T) {
	const rtol = 1e-4
	rng := rand.New(rand.NewSource(31))
	x := tensor.New(6, 12)
	x.RandUniform(rng, 1)

	// Linear
	base := NewLinear("lin", 12, 8, rand.New(rand.NewSource(1)))
	f64l := NewLinear("lin", 12, 8, rand.New(rand.NewSource(1)))
	f32l := NewLinear("lin", 12, 8, rand.New(rand.NewSource(1)))
	SetBackend(tensor.F64, f64l)
	SetBackend(tensor.F32, f32l)
	want := base.Forward(x)
	if got := f64l.Forward(x); !tensor.Equal(got, want, 0) {
		t.Fatal("Linear: explicit f64 backend diverges from default")
	}
	got32 := f32l.Forward(x)
	if e := relErr(got32, want); e == 0 || e > rtol {
		t.Fatalf("Linear: f32 forward rel err %g (want nonzero and < %g)", e, rtol)
	}
	batch32 := f32l.ForwardBatch(x)
	serial32 := tensor.New(6, 8)
	copy(serial32.Data, got32.Data)
	// Recompute serial f32 after the batch pass (workspace reuse) and
	// compare: serial and batch f32 Linear forwards share one kernel.
	if again := f32l.Forward(x); !tensor.Equal(again, batch32, 0) {
		t.Fatal("Linear: f32 serial and batch forwards disagree")
	}
	if !tensor.Equal(batch32, serial32, 0) {
		t.Fatal("Linear: f32 batch forward unstable across passes")
	}

	// LSTM over a short sequence
	seq := []*tensor.Matrix{x, x}
	baseLSTM := NewLSTM("lstm", 12, 7, rand.New(rand.NewSource(2)))
	f32LSTM := NewLSTM("lstm", 12, 7, rand.New(rand.NewSource(2)))
	SetBackend(tensor.F32, f32LSTM)
	hs := baseLSTM.Forward(seq)
	hs32 := f32LSTM.Forward(seq)
	if e := relErr(hs32[1], hs[1]); e == 0 || e > rtol {
		t.Fatalf("LSTM: f32 forward rel err %g (want nonzero and < %g)", e, rtol)
	}
	bhs32 := f32LSTM.ForwardBatch(seq)
	if e := relErr(bhs32[1], hs32[1]); e > rtol {
		t.Fatalf("LSTM: f32 batch vs serial rel err %g", e)
	}

	// GAT on a small graph
	nodes := tensor.New(5, 12)
	nodes.RandUniform(rng, 1)
	targets := []int{0, 2}
	neighbors := [][]int{{0, 1, 3}, {2, 4}}
	baseGAT := NewGAT("gat", 12, 6, 9, rand.New(rand.NewSource(3)))
	f32GAT := NewGAT("gat", 12, 6, 9, rand.New(rand.NewSource(3)))
	SetBackend(tensor.F32, f32GAT)
	wantG := baseGAT.Forward(nodes, targets, neighbors)
	gotG := f32GAT.Forward(nodes, targets, neighbors)
	if e := relErr(gotG, wantG); e == 0 || e > rtol {
		t.Fatalf("GAT: f32 forward rel err %g (want nonzero and < %g)", e, rtol)
	}
	// Share must carry the backend.
	shared := f32GAT.Share()
	gotS := shared.Forward(nodes, targets, neighbors)
	if !tensor.Equal(gotS, gotG, 0) {
		t.Fatal("GAT.Share dropped the backend: shared forward diverges")
	}
	sharedLSTM := f32LSTM.Share()
	hsS := sharedLSTM.Forward(seq)
	if !tensor.Equal(hsS[1], hs32[1], 0) {
		t.Fatal("LSTM.Share dropped the backend: shared forward diverges")
	}
}

// TestMirrorFreshness pins the Touch discipline end to end: batch forwards
// read cached weight views, so an optimizer step (and CopyParams,
// SoftUpdate, Load) must invalidate them. A stale mirror would make the
// post-step forward reproduce the pre-step output.
func TestMirrorFreshness(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := tensor.New(4, 10)
	x.RandUniform(rng, 1)
	for _, be := range []tensor.Backend{tensor.F64, tensor.F32} {
		l := NewLinear("lin", 10, 6, rand.New(rand.NewSource(4)))
		SetBackend(be, l)
		before := l.ForwardBatch(x).Clone()

		// One gradient step moves the weights; the next batch forward must
		// see the new values through the cached views.
		dy := tensor.New(4, 6)
		dy.Fill(0.1)
		l.Backward(dy)
		opt := NewAdam(0.05)
		opt.Step(l)
		fresh := NewLinear("lin", 10, 6, rand.New(rand.NewSource(5)))
		CopyParams(fresh, l)
		SetBackend(be, fresh)
		want := fresh.ForwardBatch(x)
		got := l.ForwardBatch(x)
		if !tensor.Equal(got, want, 0) {
			t.Fatalf("%s: batch forward after optimizer step served a stale weight mirror", be.Name())
		}
		if tensor.Equal(got, before, 0) {
			t.Fatalf("%s: optimizer step did not change the batch forward at all", be.Name())
		}

		// SoftUpdate must also refresh the destination's views.
		other := NewLinear("lin", 10, 6, rand.New(rand.NewSource(6)))
		SetBackend(be, other)
		_ = other.ForwardBatch(x) // warm the mirror cache
		SoftUpdate(other, l, 0.5)
		check := NewLinear("lin", 10, 6, rand.New(rand.NewSource(7)))
		CopyParams(check, other)
		SetBackend(be, check)
		if !tensor.Equal(other.ForwardBatch(x), check.ForwardBatch(x), 0) {
			t.Fatalf("%s: batch forward after SoftUpdate served a stale weight mirror", be.Name())
		}
	}
}

// TestCheckpointBackendRoundTrip pins the cross-backend checkpoint
// contract: same-backend round trips restore exactly, mismatched loads
// fail with an error naming both backends, and f64-tagged bytes are
// identical to the legacy untagged format.
func TestCheckpointBackendRoundTrip(t *testing.T) {
	src := NewLinear("lin", 5, 3, rand.New(rand.NewSource(8)))

	var legacy, tagged64, tagged32 bytes.Buffer
	if err := Save(&legacy, src); err != nil {
		t.Fatal(err)
	}
	if err := SaveTagged(&tagged64, src, "f64"); err != nil {
		t.Fatal(err)
	}
	if err := SaveTagged(&tagged32, src, "f32"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), tagged64.Bytes()) {
		t.Fatal("SaveTagged(f64) bytes differ from legacy Save — golden checkpoints would break")
	}
	if bytes.Equal(legacy.Bytes(), tagged32.Bytes()) {
		t.Fatal("SaveTagged(f32) bytes identical to f64 — backend tag missing")
	}

	// Same-backend round trips.
	dst := NewLinear("lin", 5, 3, rand.New(rand.NewSource(9)))
	if err := Load(bytes.NewReader(legacy.Bytes()), dst); err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if !tensor.Equal(dst.Weight.W, src.Weight.W, 0) {
		t.Fatal("legacy round trip lost weights")
	}
	dst = NewLinear("lin", 5, 3, rand.New(rand.NewSource(9)))
	if err := LoadTagged(bytes.NewReader(tagged32.Bytes()), dst, "f32"); err != nil {
		t.Fatalf("f32 round trip: %v", err)
	}
	if !tensor.Equal(dst.Weight.W, src.Weight.W, 0) {
		t.Fatal("f32 round trip lost weights")
	}

	// Mismatches refuse with both backends named.
	for _, tc := range []struct {
		data []byte
		as   string
	}{
		{tagged32.Bytes(), "f64"},
		{tagged32.Bytes(), ""},
		{legacy.Bytes(), "f32"},
	} {
		err := LoadTagged(bytes.NewReader(tc.data), dst, tc.as)
		if err == nil {
			t.Fatalf("loading as %q should have failed", tc.as)
		}
		if !strings.Contains(err.Error(), "f32") || !strings.Contains(err.Error(), "f64") {
			t.Errorf("mismatch error should name both backends: %v", err)
		}
	}
	// Plain Load on an f32 checkpoint gets the same clear refusal.
	if err := Load(bytes.NewReader(tagged32.Bytes()), dst); err == nil {
		t.Fatal("Load of an f32-tagged checkpoint should fail")
	} else if !strings.Contains(err.Error(), "f32") {
		t.Errorf("Load mismatch error should name the saved backend: %v", err)
	}
}
