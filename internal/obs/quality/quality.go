// Package quality is the decision-quality half of the observability
// stack: where internal/obs watches whether the service is fast and up,
// this package watches whether it still drives like the model that was
// shipped. An evaluation run profiles the trained policy's behavior into
// a baseline of fixed-bin histograms (behavior mix, commanded
// acceleration, front-leader TTC, LST-GAT attention entropy, reward
// decomposition, traffic context) written as quality_baseline.json next
// to the checkpoint; the serving path folds every decision into
// rolling-window histograms over the same bins and scores the window
// against the baseline with PSI and KL divergence.
//
// Everything here is strictly out of band: recorders and monitors are
// write-only sinks, never feed back into decisions, and are nil-safe
// throughout — the served decisions are bit-identical with quality
// monitoring off or on, which the serve identity tests gate.
package quality

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"head/internal/world"
)

// BaselineFile is the file name ExportQualityBaseline-style producers
// write inside a checkpoint directory and headserve auto-loads from one.
const BaselineFile = "quality_baseline.json"

// Metric names shared by the baseline profile and the serving monitor.
// The first six are observable on the wire (request observation +
// decision), so the monitor drifts on exactly these; the reward family
// needs ground truth and exists in baselines only.
const (
	MetricBehavior    = "behavior"     // chosen discrete behavior (world.Behavior)
	MetricAccel       = "accel"        // commanded acceleration, pre-clamp, m/s²
	MetricTTC         = "ttc"          // front-leader TTC from the sensor view, s
	MetricAttnEntropy = "attn_entropy" // mean LST-GAT attention-row entropy, nats
	MetricSpeed       = "speed"        // AV velocity at decision time, m/s
	MetricNeighbors   = "neighbors"    // observed vehicles in the decision frame

	MetricReward     = "reward"
	MetricSafety     = "safety"
	MetricEfficiency = "efficiency"
	MetricComfort    = "comfort"
	MetricImpact     = "impact"
)

// ServeMetrics are the metrics observable in the serving path; a Monitor
// tracks the intersection of this list with the loaded baseline.
var ServeMetrics = []string{
	MetricBehavior, MetricAccel, MetricTTC,
	MetricAttnEntropy, MetricSpeed, MetricNeighbors,
}

// Canonical bin edges (inclusive upper bounds; one implicit overflow bin
// follows the last edge). Both sides of a PSI comparison must bin
// identically, so these are fixed here rather than configured: ttc reuses
// the eval harness's safety-histogram bounds, attention entropy spans
// [0, ln 6] (six target slots), behavior gets one bin per discrete value,
// and accel/speed cover the default world envelope (±AMax, VMax) with the
// overflow bins absorbing non-default worlds.
var (
	behaviorBounds = []float64{0.5, 1.5} // bins: ll(0), lr(1), lk(2)
	accelBounds    = []float64{-3, -2, -1, -0.5, -0.1, 0.1, 0.5, 1, 2, 3}
	ttcBounds      = []float64{0.5, 1, 1.5, 2, 3, 4, 5, 7, 10, 15}
	entropyBounds  = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}
	speedBounds    = []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 25}
	neighborBounds = []float64{0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 8.5, 10.5, 12.5}
	rewardBounds   = []float64{-5, -2, -1, -0.5, -0.2, 0, 0.2, 0.5, 1, 2, 5}
	termBounds     = []float64{-2, -1, -0.5, -0.2, -0.1, 0, 0.1, 0.2, 0.5, 1, 2}
)

// metricBounds maps every known metric to its canonical edges.
var metricBounds = map[string][]float64{
	MetricBehavior:    behaviorBounds,
	MetricAccel:       accelBounds,
	MetricTTC:         ttcBounds,
	MetricAttnEntropy: entropyBounds,
	MetricSpeed:       speedBounds,
	MetricNeighbors:   neighborBounds,
	MetricReward:      rewardBounds,
	MetricSafety:      termBounds,
	MetricEfficiency:  termBounds,
	MetricComfort:     termBounds,
	MetricImpact:      termBounds,
}

// Hist is a fixed-bin count histogram: Bounds are inclusive upper edges,
// Counts has one extra overflow bin, and only integer counts are kept so
// a baseline built from concurrently recorded samples serializes to the
// same bytes regardless of worker count or observation order. Not safe
// for concurrent use on its own — Recorder and Monitor lock around it.
type Hist struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Total  int64     `json:"total"`
}

// NewHist returns an empty histogram over the given upper edges.
func NewHist(bounds []float64) *Hist {
	return &Hist{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Observe folds one value. Values above the last edge land in the
// overflow bin; values below the first edge in the first bin.
func (h *Hist) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Total++
}

// Clone deep-copies the histogram.
func (h *Hist) Clone() *Hist {
	return &Hist{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Total:  h.Total,
	}
}

// zero resets the counts in place, keeping the bins.
func (h *Hist) zero() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Total = 0
}

// addInto accumulates h's counts into dst, which must share h's bins.
func (h *Hist) addInto(dst *Hist) {
	for i, c := range h.Counts {
		dst.Counts[i] += c
	}
	dst.Total += h.Total
}

// sameBins reports whether two histograms bin identically.
func sameBins(a, b *Hist) bool {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i, e := range a.Bounds {
		if b.Bounds[i] != e {
			return false
		}
	}
	return true
}

// psiEpsilon floors zero-mass bins before the log-ratio terms — the
// standard PSI smoothing, keeping a bin that one side never populated
// from contributing an infinite term.
const psiEpsilon = 1e-4

// Compare scores a rolling window against a baseline over shared bins:
// PSI = Σ (p−q)·ln(p/q) and KL(window‖baseline) = Σ p·ln(p/q), where p is
// the window distribution and q the baseline's, both epsilon-floored and
// renormalized. An empty window is no evidence of drift and scores zero;
// mismatched bins or an empty baseline are configuration errors.
func Compare(base, win *Hist) (psi, kl float64, err error) {
	if base == nil || win == nil {
		return 0, 0, fmt.Errorf("quality: Compare on nil histogram")
	}
	if !sameBins(base, win) {
		return 0, 0, fmt.Errorf("quality: bin mismatch (baseline %d bins, window %d)",
			len(base.Counts), len(win.Counts))
	}
	if win.Total == 0 {
		return 0, 0, nil
	}
	if base.Total == 0 {
		return 0, 0, fmt.Errorf("quality: empty baseline histogram")
	}
	p := smoothed(win)
	q := smoothed(base)
	for i := range p {
		r := math.Log(p[i] / q[i])
		psi += (p[i] - q[i]) * r
		kl += p[i] * r
	}
	return psi, kl, nil
}

// smoothed converts counts into an epsilon-floored, renormalized
// probability distribution.
func smoothed(h *Hist) []float64 {
	p := make([]float64, len(h.Counts))
	sum := 0.0
	for i, c := range h.Counts {
		v := float64(c) / float64(h.Total)
		if v < psiEpsilon {
			v = psiEpsilon
		}
		p[i] = v
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Sample is one decision-time observation of the policy: what the
// vehicle saw (speed, neighbor count, front-leader TTC, attention
// entropy) and what it decided (behavior, pre-clamp acceleration), plus
// the reward decomposition when ground truth is available (eval only).
type Sample struct {
	Behavior    int
	Accel       float64
	Speed       float64
	Neighbors   int
	TTC         float64
	TTCValid    bool
	AttnEntropy float64
	AttnValid   bool

	Reward, Safety, Efficiency, Comfort, Impact float64
	RewardValid                                 bool
}

// Recorder accumulates decision samples into the canonical histograms —
// the baseline-building side of the PSI comparison. Safe for concurrent
// use; integer counts make the folded result independent of observation
// order, so profiled evaluations stay deterministic across worker counts.
type Recorder struct {
	method string

	mu      sync.Mutex
	metrics map[string]*Hist
	steps   int64
}

// NewRecorder returns a recorder that profiles decisions of the named
// controller only ("" profiles every controller) — table runs evaluate
// several methods over the same harness, and the baseline must describe
// exactly one policy.
func NewRecorder(method string) *Recorder {
	m := make(map[string]*Hist, len(metricBounds))
	for name, bounds := range metricBounds {
		m[name] = NewHist(bounds)
	}
	return &Recorder{method: method, metrics: m}
}

// Enabled reports whether decisions of the named controller should be
// recorded. Nil-safe: a nil recorder records nothing.
func (r *Recorder) Enabled(method string) bool {
	return r != nil && (r.method == "" || r.method == method)
}

// Observe folds one decision sample.
func (r *Recorder) Observe(s Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.steps++
	observeSample(r.metrics, s)
}

// observeSample folds s into a canonical metric map (shared with the
// monitor's window buckets so both sides bin identically by construction).
func observeSample(m map[string]*Hist, s Sample) {
	if h := m[MetricBehavior]; h != nil {
		h.Observe(float64(s.Behavior))
	}
	if h := m[MetricAccel]; h != nil {
		h.Observe(s.Accel)
	}
	if h := m[MetricSpeed]; h != nil {
		h.Observe(s.Speed)
	}
	if h := m[MetricNeighbors]; h != nil {
		h.Observe(float64(s.Neighbors))
	}
	if h := m[MetricTTC]; h != nil && s.TTCValid {
		h.Observe(s.TTC)
	}
	if h := m[MetricAttnEntropy]; h != nil && s.AttnValid {
		h.Observe(s.AttnEntropy)
	}
	if s.RewardValid {
		for name, v := range map[string]float64{
			MetricReward: s.Reward, MetricSafety: s.Safety,
			MetricEfficiency: s.Efficiency, MetricComfort: s.Comfort,
			MetricImpact: s.Impact,
		} {
			if h := m[name]; h != nil {
				h.Observe(v)
			}
		}
	}
}

// Steps returns how many samples the recorder has folded.
func (r *Recorder) Steps() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// Baseline is the exported behavioral profile: run provenance (tool,
// scale, seed, config hash — the same identity fields the run manifest
// carries) plus the recorded histograms. Its JSON form is deterministic:
// integer counts, map keys in sorted order, no timestamps.
type Baseline struct {
	Tool       string           `json:"tool"`
	Scale      string           `json:"scale,omitempty"`
	Seed       int64            `json:"seed"`
	ConfigHash string           `json:"config_hash,omitempty"`
	Episodes   int              `json:"episodes"`
	Steps      int64            `json:"steps"`
	Metrics    map[string]*Hist `json:"metrics"`
}

// Baseline snapshots the recorder into meta (which carries the
// provenance fields; Steps and Metrics are filled in).
func (r *Recorder) Baseline(meta Baseline) *Baseline {
	r.mu.Lock()
	defer r.mu.Unlock()
	meta.Steps = r.steps
	meta.Metrics = make(map[string]*Hist, len(r.metrics))
	for name, h := range r.metrics {
		meta.Metrics[name] = h.Clone()
	}
	return &meta
}

// Write stores the baseline as indented JSON with a trailing newline.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline written by Write, rejecting files without
// usable histograms so a truncated or foreign JSON fails loudly at load
// time rather than as zero PSI forever.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("quality: %s: %w", path, err)
	}
	if len(b.Metrics) == 0 {
		return nil, fmt.Errorf("quality: %s: no metrics — not a quality baseline", path)
	}
	for name, h := range b.Metrics {
		if h == nil || len(h.Counts) != len(h.Bounds)+1 {
			return nil, fmt.Errorf("quality: %s: metric %q has malformed bins", path, name)
		}
	}
	return &b, nil
}

// MeanAttnEntropy is the scalar attention summary both sides of the PSI
// comparison share: the mean Shannon entropy (nats) of the renormalized
// attention rows. Rows with no positive mass are skipped; ok is false
// when no row contributed. The serving replica calls this on the rows of
// one request inside the batched attention cache, the evaluation harness
// on the serial predictor's rows — identical float operations in
// identical order, so matched traffic scores PSI ≈ 0.
func MeanAttnEntropy(rows [][]float64) (float64, bool) {
	sum, n := 0.0, 0
	for _, row := range rows {
		if h, ok := rowEntropy(row); ok {
			sum += h
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// rowEntropy is the Shannon entropy (nats) of one attention row after
// renormalization — the same computation the span analyzer uses for its
// attention summaries.
func rowEntropy(row []float64) (float64, bool) {
	sum := 0.0
	for _, p := range row {
		if p > 0 {
			sum += p
		}
	}
	if sum <= 0 {
		return 0, false
	}
	h := 0.0
	for _, p := range row {
		if p > 0 {
			q := p / sum
			h -= q * math.Log(q)
		}
	}
	return h, true
}

// LeaderTTC computes the front-leader time-to-collision from a sensor
// view: among the n observed vehicles (veh(i) returns the i-th id and
// state), the leader is the nearest one ahead of the AV in its lane,
// ties broken by lowest id so map-ordered callers stay deterministic.
// Returns ok=false without a leader on a collision course. Shared by the
// serving monitor (wire frames) and the profiled evaluation (sensor
// frames) so both sides measure the same quantity.
func LeaderTTC(av world.State, n int, veh func(i int) (int, world.State), vehicleLen float64) (float64, bool) {
	bestID := -1
	var best world.State
	for i := 0; i < n; i++ {
		id, st := veh(i)
		if st.Lat != av.Lat || st.Lon <= av.Lon {
			continue
		}
		if bestID < 0 || st.Lon < best.Lon || (st.Lon == best.Lon && id < bestID) {
			bestID, best = id, st
		}
	}
	if bestID < 0 {
		return 0, false
	}
	return world.TTC(av, best, vehicleLen)
}
