// Command rewardgrid reproduces Table VII: the grid search over the hybrid
// reward function's coefficients (w1 safety, w2 efficiency, w3 comfort,
// w4 impact). Each axis is swept with the others held at the base vector;
// a candidate is scored by the average greedy test reward of a BP-DQN
// agent trained under it.
//
// Usage:
//
//	rewardgrid [-scale quick|record|paper] [-train N] [-seed N] [-workers N] [-debug-addr :8080] [-progress] [-trace-out dir] [-trace-sample 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"head/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rewardgrid: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick, record or paper")
		train     = flag.Int("train", 0, "override the number of training episodes per grid point")
		seed      = flag.Int64("seed", 0, "override the random seed")
		workers   = flag.Int("workers", 0, "max parallel workers (0 = all cores; results are identical for any value)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/pprof/* and /debug/vars on this address (e.g. :8080; empty disables)")
		progress  = flag.Bool("progress", false, "print a live heartbeat line per episode/epoch to stderr")
		traceOut  = flag.String("trace-out", "", "directory to write trace.json (Chrome trace-event JSON) and decisions.jsonl into (empty disables tracing)")
		traceSmpl = flag.Float64("trace-sample", 1, "fraction of steps traced, deterministic per (lane, episode, step); 0 or 1 traces every step")
	)
	flag.Parse()

	var s experiments.Scale
	switch *scaleName {
	case "quick":
		s = experiments.Quick()
	case "record":
		s = experiments.Record()
	case "paper":
		s = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q (want quick, record or paper)", *scaleName)
	}
	if *train > 0 {
		s.TrainEpisodes = *train
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.Workers = *workers
	srv, finishTrace, err := s.ObserveDefault(*progress, *debugAddr, *traceOut, *traceSmpl)
	if err != nil {
		log.Fatal(err)
	}
	if srv != nil {
		defer srv.Close()
		log.Printf("debug server on http://%s (/metrics, /debug/pprof/, /debug/vars, /debug/trace)", srv.Addr())
	}

	rows, err := experiments.TableVII(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table VII — Effect of Coefficients in the Hybrid Reward Function")
	experiments.PrintAxisResults(os.Stdout, rows)
	if err := finishTrace(); err != nil {
		log.Fatal("trace: ", err)
	}
}
