package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randMat fills a rows×cols matrix with values spanning several magnitudes
// plus exact zeros and negative zeros, the cases where accumulation-order
// bugs show up.
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(8) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = math.Copysign(0, -1)
		default:
			m.Data[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
	return m
}

// bitsEqual reports whether a and b match bit-for-bit, including NaN
// payloads and zero signs.
func bitsEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Float64bits(v) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestIntoBitIdentity is the kernel contract test: every Into kernel must
// produce bit-identical results to its allocating counterpart across random
// shapes, with dst pre-filled with garbage to catch kernels that assume a
// zeroed destination.
func TestIntoBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	garbage := func(rows, cols int) *Matrix {
		g := New(rows, cols)
		for i := range g.Data {
			g.Data[i] = math.NaN()
		}
		return g
	}
	for trial := 0; trial < 200; trial++ {
		r := 1 + rng.Intn(7)
		k := 1 + rng.Intn(7)
		c := 1 + rng.Intn(7)
		a := randMat(rng, r, k)
		b := randMat(rng, r, k)
		cases := []struct {
			name string
			want *Matrix
			run  func(dst *Matrix)
			rows int
			cols int
		}{
			{"AddInto", Add(a, b), func(d *Matrix) { AddInto(d, a, b) }, r, k},
			{"SubInto", Sub(a, b), func(d *Matrix) { SubInto(d, a, b) }, r, k},
			{"MulInto", Mul(a, b), func(d *Matrix) { MulInto(d, a, b) }, r, k},
			{"ScaleInto", Scale(a, 0.37), func(d *Matrix) { ScaleInto(d, a, 0.37) }, r, k},
			{"ApplyInto", Apply(a, math.Tanh), func(d *Matrix) { ApplyInto(d, a, math.Tanh) }, r, k},
			{"TanhInto", Apply(a, math.Tanh), func(d *Matrix) { TanhInto(d, a) }, r, k},
			{"SigmoidInto", Apply(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }),
				func(d *Matrix) { SigmoidInto(d, a) }, r, k},
			{"ReLUInto", Apply(a, func(x float64) float64 {
				if x > 0 {
					return x
				}
				return 0
			}), func(d *Matrix) { ReLUInto(d, a) }, r, k},
			{"LeakyReLUInto", Apply(a, func(x float64) float64 {
				if x > 0 {
					return x
				}
				return 0.2 * x
			}), func(d *Matrix) { LeakyReLUInto(d, a, 0.2) }, r, k},
			{"TransposeInto", Transpose(a), func(d *Matrix) { TransposeInto(d, a) }, k, r},
			{"ConcatColsInto", ConcatCols(a, b), func(d *Matrix) { ConcatColsInto(d, a, b) }, r, 2 * k},
			{"SoftmaxRowsInto", SoftmaxRows(a), func(d *Matrix) { SoftmaxRowsInto(d, a) }, r, k},
		}
		// Product kernels need their own operand shapes.
		ma := randMat(rng, r, k)
		mb := randMat(rng, k, c)
		bias := randMat(rng, 1, c)
		biased := MatMul(ma, mb)
		for i := 0; i < biased.Rows; i++ {
			row := biased.Row(i)
			for j, bv := range bias.Data {
				row[j] += bv
			}
		}
		ta := randMat(rng, k, r) // for aᵀ·b with inner dim k
		tb := randMat(rng, c, k) // for a·bᵀ with inner dim k
		cases = append(cases,
			struct {
				name string
				want *Matrix
				run  func(dst *Matrix)
				rows int
				cols int
			}{"MatMulInto", MatMul(ma, mb), func(d *Matrix) { MatMulInto(d, ma, mb) }, r, c},
			struct {
				name string
				want *Matrix
				run  func(dst *Matrix)
				rows int
				cols int
			}{"MatMulAddBiasInto", biased, func(d *Matrix) { MatMulAddBiasInto(d, ma, mb, bias) }, r, c},
			struct {
				name string
				want *Matrix
				run  func(dst *Matrix)
				rows int
				cols int
			}{"MatMulTransAInto", MatMul(Transpose(ta), mb), func(d *Matrix) { MatMulTransAInto(d, ta, mb) }, r, c},
			struct {
				name string
				want *Matrix
				run  func(dst *Matrix)
				rows int
				cols int
			}{"MatMulTransBInto", MatMul(ma, Transpose(tb)), func(d *Matrix) { MatMulTransBInto(d, ma, tb) }, r, c},
		)
		for _, tc := range cases {
			dst := garbage(tc.rows, tc.cols)
			tc.run(dst)
			if !bitsEqual(dst, tc.want) {
				t.Fatalf("trial %d: %s diverges from allocating op:\n got  %v\n want %v", trial, tc.name, dst, tc.want)
			}
		}
		// SliceColsInto against SplitCols halves.
		lo := rng.Intn(k + 1)
		left, right := SplitCols(a, lo)
		dl := garbage(r, lo)
		SliceColsInto(dl, a, 0)
		dr := garbage(r, k-lo)
		SliceColsInto(dr, a, lo)
		if !bitsEqual(dl, left) || !bitsEqual(dr, right) {
			t.Fatalf("trial %d: SliceColsInto diverges from SplitCols", trial)
		}
	}
}

// TestIntoAliasing exercises the documented aliasing contract: element-wise
// kernels must produce identical results when dst aliases an input, and
// product/layout kernels must panic on full aliasing.
func TestIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 5, 7)
	b := randMat(rng, 5, 7)

	aliased := []struct {
		name string
		want *Matrix
		run  func(dst *Matrix)
	}{
		{"AddInto", Add(a, b), func(d *Matrix) { AddInto(d, d, b) }},
		{"SubInto", Sub(a, b), func(d *Matrix) { SubInto(d, d, b) }},
		{"MulInto", Mul(a, b), func(d *Matrix) { MulInto(d, d, b) }},
		{"ScaleInto", Scale(a, -1.5), func(d *Matrix) { ScaleInto(d, d, -1.5) }},
		{"TanhInto", Apply(a, math.Tanh), func(d *Matrix) { TanhInto(d, d) }},
		{"SigmoidInto", Apply(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }),
			func(d *Matrix) { SigmoidInto(d, d) }},
		{"SoftmaxRowsInto", SoftmaxRows(a), func(d *Matrix) { SoftmaxRowsInto(d, d) }},
	}
	for _, tc := range aliased {
		dst := a.Clone()
		tc.run(dst)
		if !bitsEqual(dst, tc.want) {
			t.Errorf("%s with dst==a diverges:\n got  %v\n want %v", tc.name, dst, tc.want)
		}
	}

	square := randMat(rng, 6, 6)
	mustPanic := []struct {
		name string
		run  func()
	}{
		{"MatMulInto", func() { MatMulInto(square, square, randMat(rng, 6, 6)) }},
		{"MatMulInto-b", func() { MatMulInto(square, randMat(rng, 6, 6), square) }},
		{"MatMulSparseInto", func() { MatMulSparseInto(square, square, randMat(rng, 6, 6)) }},
		{"MatMulTransAInto", func() { MatMulTransAInto(square, square, randMat(rng, 6, 6)) }},
		{"MatMulTransBInto", func() { MatMulTransBInto(square, randMat(rng, 6, 6), square) }},
		{"TransposeInto", func() { TransposeInto(square, square) }},
		{"ConcatColsInto", func() {
			d := randMat(rng, 6, 12)
			ConcatColsInto(d, FromSlice(6, 6, d.Data[:36]), randMat(rng, 6, 6))
		}},
		{"SliceColsInto", func() { SliceColsInto(square, square, 0) }},
	}
	for _, tc := range mustPanic {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: aliased dst did not panic", tc.name)
				}
			}()
			tc.run()
		}()
	}
}

// TestMatMulNaNPropagation pins the satellite fix: MatMul must propagate
// NaN/Inf through zero operands (0·NaN = NaN), while MatMulSparseInto
// documents the opposite.
func TestMatMulNaNPropagation(t *testing.T) {
	a := FromSlice(1, 2, []float64{0, 1})
	b := FromSlice(2, 1, []float64{math.NaN(), 2})
	if got := MatMul(a, b).At(0, 0); !math.IsNaN(got) {
		t.Errorf("MatMul masked NaN through a zero operand: got %v", got)
	}
	dst := New(1, 1)
	MatMulSparseInto(dst, a, b)
	if got := dst.At(0, 0); got != 2 {
		t.Errorf("MatMulSparseInto should skip the zero row: got %v, want 2", got)
	}
}

// TestMatMulSparseFiniteIdentity checks the sparse kernel's documented
// guarantee: on finite inputs it matches MatMulInto bit-for-bit even with
// many exact zeros.
func TestMatMulSparseFiniteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randMat(rng, r, k)
		b := randMat(rng, k, c)
		dense := New(r, c)
		sparse := New(r, c)
		MatMulInto(dense, a, b)
		MatMulSparseInto(sparse, a, b)
		if !bitsEqual(dense, sparse) {
			t.Fatalf("trial %d: sparse kernel diverges on finite data:\n%v\nvs\n%v", trial, dense, sparse)
		}
	}
}

// TestWorkspace exercises the arena's ownership rules: distinct matrices
// between resets, storage reuse across resets, zero steady-state growth.
func TestWorkspace(t *testing.T) {
	var ws Workspace
	m1 := ws.Get(3, 4)
	m2 := ws.Get(3, 4)
	if m1 == m2 {
		t.Fatal("two Gets between Resets returned the same matrix")
	}
	m3 := ws.GetZero(2, 2)
	m3.Fill(9)
	ws.Reset()
	if got := ws.Get(3, 4); got != m1 {
		t.Error("first Get after Reset should reuse the first buffer")
	}
	if got := ws.Get(3, 4); got != m2 {
		t.Error("second Get after Reset should reuse the second buffer")
	}
	if z := ws.GetZero(2, 2); z != m3 || z.Data[0] != 0 {
		t.Error("GetZero after Reset should reuse and zero the buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		ws.Get(3, 4)
		ws.Get(3, 4)
		ws.GetZero(2, 2)
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset/Get cycle allocates %v times", allocs)
	}
}

// TestStringTruncation pins the satellite fix: large matrices must not dump
// their full Data slice.
func TestStringTruncation(t *testing.T) {
	small := FromSlice(1, 3, []float64{1, 2, 3})
	if s := small.String(); !strings.Contains(s, "[1 2 3]") {
		t.Errorf("small matrix should print fully: %q", s)
	}
	big := New(42, 5)
	s := big.String()
	if len(s) > 200 {
		t.Errorf("String of 42x5 matrix is %d bytes, want truncated: %q", len(s), s)
	}
	if !strings.Contains(s, "210 elems") {
		t.Errorf("truncated String should report the element count: %q", s)
	}
}
