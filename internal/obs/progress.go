package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is the human sink: a throttled heartbeat line on a writer
// (normally stderr, so table output on stdout stays clean). A nil
// *Progress is valid and silent, which lets instrumented loops call it
// unconditionally.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	now      func() time.Time // injected clock; time.Now in production
	start    time.Time
	last     time.Time
	interval time.Duration
}

// NewProgress returns a progress reporter writing to w with a 1 s
// heartbeat interval.
func NewProgress(w io.Writer) *Progress {
	return newProgress(w, time.Now)
}

// newProgress is the constructor with an injectable clock, so
// heartbeat-throttling tests control time instead of sleeping.
func newProgress(w io.Writer, now func() time.Time) *Progress {
	return &Progress{w: w, now: now, start: now(), interval: time.Second}
}

// SetInterval changes the minimum spacing between heartbeat lines.
func (p *Progress) SetInterval(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.interval = d
	p.mu.Unlock()
}

// Logf writes one line unconditionally.
func (p *Progress) Logf(format string, args ...any) { p.emit(true, format, args) }

// Heartbeat writes one line unless the previous line was emitted less
// than the heartbeat interval ago — the form hot loops call once per
// episode or epoch without flooding the terminal.
func (p *Progress) Heartbeat(format string, args ...any) { p.emit(false, format, args) }

func (p *Progress) emit(force bool, format string, args []any) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if !force && now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	fmt.Fprintf(p.w, "[%8.1fs] %s\n", now.Sub(p.start).Seconds(), fmt.Sprintf(format, args...))
}
